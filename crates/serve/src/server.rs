//! The server: listener setup, per-connection threads, and the request
//! handlers that execute protocol verbs against the shared state.
//!
//! One [`ServerState`] is shared by every connection: the dataset
//! [`Registry`] behind its `RwLock`, one [`WsPool`] so accumulator
//! scratch is reused across *all* requests (the second query against a
//! warm dataset allocates nothing), and one [`ExecStats`] recorder
//! feeding the `stats` verb's busy-spread figure. Parallel kernels run on
//! the process-wide persistent worker pool (the rayon layer), so steady
//! state spawns no threads either.
//!
//! The accept loop runs on its own thread; each accepted connection gets
//! a handler thread that loops over request lines until EOF, an oversized
//! payload, or `shutdown`. Connection threads do **not** execute heavy
//! verbs themselves: `mxm`, `app`, and `update` requests are validated at
//! admission
//! and handed to the scheduler's bounded queue, where a fixed
//! pool of executor workers (`--max-inflight`) drains them — so
//! concurrency is a policy knob, overload is answered with a typed
//! `busy` + `retry_after_ms` instead of unbounded queueing, queued
//! requests that differ only by mask mode fuse into one kernel pass, and
//! `deadline_ms` budgets cancel expired work before its numeric phase.
//! Light verbs (ping, list, stats, metrics, load, …) still run inline on
//! the connection thread.
//!
//! Shutdown is cooperative: the flag flips, the accept loop is woken by
//! a self-connection, and in-flight requests finish their response
//! before the process exits.

use crate::json::{self, Json};
use crate::protocol::{
    err_response, err_response_with, ok_response, opt_bool, opt_str, opt_u64, read_frame, req_str,
    ErrorCode, Frame, MAX_REQUEST_BYTES,
};
use crate::registry::{Dataset, Registry, RegistryError, TcCache};
use crate::scheduler::{Admission, Job, Scheduler};
use masked_spgemm::{
    masked_mxm_with_bt, masked_mxm_with_opts, Algorithm, ExecOpts, ExecStats, MaskMode, Phases,
    RowSchedule, WsPool,
};
use mspgemm_graph::{bc, ktruss, tricount, App, Scheme};
use mspgemm_harness::{busy_spread, csr_fingerprint, gflops, mb_per_s, time_best, with_threads};
use mspgemm_io::{CachePolicy, LoadOpts};
use mspgemm_obs::{HistSnapshot, MetricsRegistry, Series};
use mspgemm_sparse::overlay::DeltaOp;
use mspgemm_sparse::semiring::PlusTimesF64;
use mspgemm_sparse::{Csr, Idx};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, OnceLock};
use std::time::{Duration, Instant};

/// Server-wide defaults a request can override per call.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Row schedule used when a request does not name one.
    pub schedule: RowSchedule,
    /// Parse fan-out for `load` when the request does not pin one
    /// (`0` = all cores).
    pub parse_threads: usize,
    /// Sidecar cache policy for `load` (default: read/write, so the
    /// first text load warms the `.msb` sidecar).
    pub cache: CachePolicy,
    /// Prefer zero-copy mmap residency for v2 `.msb` inputs/sidecars
    /// (`mxm serve --mmap`); requests can override per `load`.
    pub mmap: bool,
    /// Load datasets pattern-only by default (`mxm serve --pattern`):
    /// weights are discarded at ingest and the value section becomes a
    /// view of the process-wide unit arena. Requests can override per
    /// `load`.
    pub pattern: bool,
    /// Executor workers draining the admission queue — the number of
    /// heavy requests executing concurrently (`mxm serve
    /// --max-inflight`). Clamped to at least 1.
    pub max_inflight: usize,
    /// Admission queue capacity: a heavy request arriving when this many
    /// are already waiting is answered with a typed `busy` error
    /// (`mxm serve --queue-depth`). Clamped to at least 1.
    pub queue_depth: usize,
    /// Resident-memory budget across all datasets (`mxm serve
    /// --max-resident-bytes`); a `load` over budget evicts
    /// least-recently-used un-pinned datasets first. `0` = unlimited.
    pub max_resident_bytes: u64,
    /// Kernel panics attributed to one dataset before it is quarantined
    /// (`mxm serve --quarantine-after`). Clamped to at least 1.
    pub quarantine_after: u32,
    /// Pending overlay positions that trigger automatic compaction on the
    /// next `update` (`mxm serve --compact-after-nnz`). `0` disables the
    /// threshold — compaction then happens only when a request asks with
    /// `"compact": true`.
    pub compact_after_nnz: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            schedule: RowSchedule::default(),
            parse_threads: 0,
            cache: CachePolicy::ReadWrite,
            mmap: false,
            pattern: false,
            // Two executor slots keep a second core busy while one
            // request fills the other; 64 queued jobs is roughly a
            // second of backlog at interactive kernel sizes. Both are
            // sized so light workloads never see `busy`.
            max_inflight: 2,
            queue_depth: 64,
            max_resident_bytes: 0,
            // Three strikes: one panic may be cosmic-ray bad luck, three
            // against the same dataset is a pattern worth fencing off.
            quarantine_after: 3,
            // 4096 pending positions before the overlay folds into a
            // fresh base: small enough that incremental-TC edge logs stay
            // cheap to replay, large enough that single-edge drip feeds
            // do not compact every batch.
            compact_after_nnz: 4096,
        }
    }
}

/// Everything the request handlers share across connections.
pub struct ServerState {
    /// The resident datasets.
    pub registry: Registry,
    /// Cross-request accumulator cache: the reason a warm query
    /// allocates nothing.
    pub ws_pool: WsPool,
    /// Cumulative per-thread busy-time recorder behind the `stats`
    /// verb's load-balance figure.
    pub exec_stats: ExecStats,
    /// Named metric series — request counters, per-verb and per-dataset
    /// latency and queue-wait histograms, ingest totals — served by the
    /// `metrics` verb as JSON or Prometheus text.
    pub metrics: MetricsRegistry,
    /// The admission queue feeding the executor workers; heavy verbs go
    /// through here, light verbs bypass it.
    pub(crate) scheduler: Scheduler,
    config: ServeConfig,
    started: Instant,
    requests: AtomicU64,
    /// Requests currently between line-read and response-flush; shutdown
    /// drains this to zero before the process exits.
    active: AtomicU64,
    shutting_down: AtomicBool,
    /// The resolved listen address, for the shutdown self-connection.
    addr: OnceLock<String>,
}

impl ServerState {
    fn new(config: ServeConfig) -> Arc<Self> {
        let state = Arc::new(ServerState {
            registry: Registry::with_limits(config.max_resident_bytes, config.quarantine_after),
            ws_pool: WsPool::new(),
            exec_stats: ExecStats::new(),
            metrics: MetricsRegistry::new(),
            scheduler: Scheduler::new(config.max_inflight, config.queue_depth),
            config,
            started: Instant::now(),
            requests: AtomicU64::new(0),
            active: AtomicU64::new(0),
            shutting_down: AtomicBool::new(false),
            addr: OnceLock::new(),
        });
        // Pre-touch the overload counters so every metrics scrape carries
        // them at zero — an operator alerting on `rejected_busy_total`
        // sees the series exist before the first rejection.
        for name in [
            "rejected_busy_total",
            "deadline_exceeded_total",
            "fused_requests_total",
            "worker_restarts_total",
            "quarantined_total",
            "evictions_total",
            "updates_total",
            "compactions_total",
        ] {
            let _ = state.metrics.counter(name, &[]);
        }
        Scheduler::spawn_workers(&state);
        state
    }

    /// Whether shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shutting_down.load(Ordering::SeqCst)
    }

    fn begin_shutdown(&self) {
        self.shutting_down.store(true, Ordering::SeqCst);
    }

    /// Requests handled so far (including ones answered with an error).
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }
}

/// One running server: accept-loop thread plus shared state. Dropping the
/// handle shuts the server down (tests rely on this); the CLI instead
/// parks on [`Server::wait`] until a `shutdown` request arrives.
pub struct Server {
    state: Arc<ServerState>,
    accept: Option<std::thread::JoinHandle<()>>,
}

enum Binding {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener, std::path::PathBuf),
}

impl Server {
    /// Bind `listen` and start accepting. `listen` is either a TCP
    /// address (`127.0.0.1:7654`, port `0` picks a free one) or
    /// `unix:/path/to.sock`.
    pub fn start(listen: &str, config: ServeConfig) -> Result<Server, String> {
        let state = ServerState::new(config);
        let (binding, addr) = if let Some(path) = listen.strip_prefix("unix:") {
            #[cfg(unix)]
            {
                let l = UnixListener::bind(path).map_err(|e| format!("bind {listen}: {e}"))?;
                (Binding::Unix(l, path.into()), listen.to_string())
            }
            #[cfg(not(unix))]
            {
                return Err(format!(
                    "bind {listen}: unix sockets are not supported on this platform"
                ));
            }
        } else {
            let l = TcpListener::bind(listen).map_err(|e| format!("bind {listen}: {e}"))?;
            let local = l.local_addr().map_err(|e| e.to_string())?;
            (Binding::Tcp(l), local.to_string())
        };
        state.addr.set(addr).unwrap();
        let st = state.clone();
        let accept = std::thread::Builder::new()
            .name("mxm-serve-accept".into())
            .spawn(move || accept_loop(st, binding))
            .map_err(|e| e.to_string())?;
        Ok(Server {
            state,
            accept: Some(accept),
        })
    }

    /// The resolved listen address (`host:port`, or `unix:/path`).
    pub fn addr(&self) -> &str {
        self.state.addr.get().expect("set at start")
    }

    /// The shared state (registries, pools) — for preloading and tests.
    pub fn state(&self) -> &Arc<ServerState> {
        &self.state
    }

    /// Load datasets into the registry before (or while) serving, using
    /// the server's default cache policy and parse fan-out. Returns the
    /// registry names in input order. Preloads are **pinned**: the
    /// operator named them on the command line, so the memory budget
    /// never evicts them in favor of an ad-hoc `load`.
    pub fn preload(&self, paths: &[String]) -> Result<Vec<String>, String> {
        paths
            .iter()
            .map(|p| {
                self.state
                    .registry
                    .load(
                        p,
                        None,
                        &LoadOpts {
                            policy: self.state.config.cache,
                            parse_threads: self.state.config.parse_threads,
                            mmap: self.state.config.mmap,
                            pattern: self.state.config.pattern,
                        },
                        true,
                    )
                    .map(|out| out.ds.name.clone())
                    .map_err(|e| e.to_string())
            })
            .collect()
    }

    /// Request shutdown, join the accept thread, and drain in-flight
    /// requests. Idempotent.
    pub fn shutdown(&mut self) {
        self.state.begin_shutdown();
        if let Some(addr) = self.state.addr.get() {
            wake(addr);
        }
        if let Some(h) = self.accept.take() {
            h.join().ok();
        }
        drain_in_flight(&self.state);
    }

    /// Block until a `shutdown` request stops the server, then until
    /// every in-flight request has flushed its response.
    pub fn wait(mut self) {
        if let Some(h) = self.accept.take() {
            h.join().ok();
        }
        drain_in_flight(&self.state);
    }
}

/// Connection handler threads are detached (an idle connection parked on
/// a read would block a join forever), so shutdown instead waits for the
/// *requests* currently executing — kernels always terminate — and lets
/// idle connections die with the process, their responses long since
/// flushed.
fn drain_in_flight(state: &ServerState) {
    while state.active.load(Ordering::SeqCst) > 0 {
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Poke the listener so a blocked `accept` observes the shutdown flag.
fn wake(addr: &str) {
    if let Some(_path) = addr.strip_prefix("unix:") {
        #[cfg(unix)]
        {
            let _ = UnixStream::connect(_path);
        }
    } else {
        let _ = TcpStream::connect(addr);
    }
}

fn accept_loop(state: Arc<ServerState>, binding: Binding) {
    match binding {
        Binding::Tcp(listener) => loop {
            let conn = listener.accept();
            if state.is_shutting_down() {
                break;
            }
            match conn {
                Ok((stream, _)) => {
                    let st = state.clone();
                    std::thread::spawn(move || {
                        let reader = match stream.try_clone() {
                            Ok(r) => BufReader::new(r),
                            Err(_) => return,
                        };
                        let _ = serve_connection(&st, reader, stream);
                    });
                }
                // Transient errors (EMFILE under fd exhaustion, ECONNABORTED)
                // return immediately; back off instead of spinning a core.
                Err(_) => std::thread::sleep(std::time::Duration::from_millis(10)),
            }
        },
        #[cfg(unix)]
        Binding::Unix(listener, path) => {
            loop {
                let conn = listener.accept();
                if state.is_shutting_down() {
                    break;
                }
                match conn {
                    Ok((stream, _)) => {
                        let st = state.clone();
                        std::thread::spawn(move || {
                            let reader = match stream.try_clone() {
                                Ok(r) => BufReader::new(r),
                                Err(_) => return,
                            };
                            let _ = serve_connection(&st, reader, stream);
                        });
                    }
                    Err(_) => std::thread::sleep(std::time::Duration::from_millis(10)),
                }
            }
            std::fs::remove_file(&path).ok();
        }
    }
}

/// Drive one connection: read request lines, write response lines, until
/// EOF, an oversized payload, or shutdown.
pub fn serve_connection(
    state: &Arc<ServerState>,
    mut reader: impl BufRead,
    mut writer: impl Write,
) -> std::io::Result<()> {
    loop {
        match read_frame(&mut reader, MAX_REQUEST_BYTES)? {
            Frame::Eof => return Ok(()),
            Frame::Oversized => {
                let resp = err_response(
                    ErrorCode::PayloadTooLarge,
                    format!("request line exceeds {MAX_REQUEST_BYTES} bytes"),
                );
                writeln!(writer, "{}", resp.to_line())?;
                writer.flush()?;
                // Swallow the rest of the oversized line (constant
                // memory) before closing: dropping the socket with
                // unread bytes queued would RST the connection and race
                // the error response out of the peer's receive buffer.
                drain_line(&mut reader).ok();
                return Ok(());
            }
            Frame::Line(line) => {
                if line.trim().is_empty() {
                    continue;
                }
                let received = Instant::now();
                // In-flight guard spans compute *and* response flush, so
                // shutdown's drain never cuts a response mid-write.
                let guard = ActiveGuard::new(&state.active);
                let (resp, stop) = handle_request_at(state, &line, received);
                // Failpoint `serve.conn.drop`: the request executed and
                // was *recorded*, but the response is discarded and the
                // connection closed — the client sees its socket die.
                // Firing after recording keeps the metric invariants
                // exact: `hits("serve.conn.drop")` is precisely the gap
                // between requests counted and responses delivered.
                if mspgemm_fault::fire("serve.conn.drop").is_some() {
                    return Ok(());
                }
                writeln!(writer, "{}", resp.to_line())?;
                writer.flush()?;
                drop(guard);
                if stop {
                    state.begin_shutdown();
                    if let Some(addr) = state.addr.get() {
                        wake(addr);
                    }
                    return Ok(());
                }
            }
        }
    }
}

/// RAII increment of the in-flight request counter; decrements on drop
/// (including the early-return paths when a response write fails).
struct ActiveGuard<'a>(&'a AtomicU64);

impl Drop for ActiveGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

impl<'a> ActiveGuard<'a> {
    fn new(counter: &'a AtomicU64) -> Self {
        counter.fetch_add(1, Ordering::SeqCst);
        ActiveGuard(counter)
    }
}

/// Upper bound on bytes swallowed while draining one oversized line. The
/// drain exists only to let the error response escape the peer's receive
/// buffer before the close; a peer streaming gigabytes without a newline
/// is not owed that courtesy, and an unbounded drain would let it hold
/// the connection thread (and the socket) forever.
const DRAIN_CAP_BYTES: usize = 8 * MAX_REQUEST_BYTES;

/// Discard input up to and including the next newline (or EOF), in
/// constant memory, giving up after [`DRAIN_CAP_BYTES`].
fn drain_line(reader: &mut impl BufRead) -> std::io::Result<()> {
    let mut drained = 0usize;
    loop {
        let buf = reader.fill_buf()?;
        if buf.is_empty() {
            return Ok(());
        }
        match buf.iter().position(|&b| b == b'\n') {
            Some(i) => {
                reader.consume(i + 1);
                return Ok(());
            }
            None => {
                let n = buf.len();
                drained += n;
                reader.consume(n);
                if drained >= DRAIN_CAP_BYTES {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        "oversized line exceeded the drain cap",
                    ));
                }
            }
        }
    }
}

type OpResult = Result<Json, (ErrorCode, String)>;

fn bad(msg: String) -> (ErrorCode, String) {
    (ErrorCode::BadRequest, msg)
}

fn reg_err(e: RegistryError) -> (ErrorCode, String) {
    let code = match &e {
        RegistryError::AlreadyLoaded(_) => ErrorCode::AlreadyLoaded,
        RegistryError::NotFound(_) => ErrorCode::UnknownDataset,
        RegistryError::Load(_) => ErrorCode::LoadFailed,
        RegistryError::Quarantined(_) => ErrorCode::Quarantined,
        RegistryError::Evicted(_) => ErrorCode::Evicted,
        RegistryError::OverBudget(_) => ErrorCode::OverBudget,
        RegistryError::OutOfBounds(_) => ErrorCode::OutOfBounds,
    };
    (code, e.to_string())
}

/// Parse an optional field into any `FromStr` type, accepting both the
/// string spelling and (for convenience) an integral number — so
/// `"phases": 2` and `"phases": "2"` both work.
fn opt_parse<T: std::str::FromStr<Err = String>>(
    req: &Json,
    field: &str,
    default: &str,
) -> Result<T, (ErrorCode, String)> {
    let spelled = match req.get(field) {
        None | Some(Json::Null) => default.to_string(),
        Some(Json::Str(s)) => s.clone(),
        Some(v @ Json::Num(_)) => match v.as_u64() {
            Some(n) => n.to_string(),
            None => return Err(bad(format!("'{field}' must be a string or integer"))),
        },
        Some(_) => return Err(bad(format!("'{field}' must be a string or integer"))),
    };
    spelled.parse().map_err(|e| bad(format!("'{field}': {e}")))
}

fn mask_name(mode: MaskMode) -> &'static str {
    match mode {
        MaskMode::Mask => "normal",
        MaskMode::Complement => "complement",
    }
}

/// Dispatch one request line. Returns the response and whether the server
/// should stop accepting (the `shutdown` verb).
pub fn handle_request(state: &ServerState, line: &str) -> (Json, bool) {
    handle_request_at(state, line, Instant::now())
}

/// Where a parsed request line was sent.
enum Routed {
    /// Executed (or rejected) synchronously on the connection thread.
    Inline {
        verb: &'static str,
        dataset: Option<String>,
        result: OpResult,
        stop: bool,
    },
    /// Admitted to the scheduler; the reply channel produces the one
    /// response, and the executor worker records its metrics.
    Queued {
        verb: &'static str,
        dataset: Option<String>,
        rx: mpsc::Receiver<Json>,
    },
}

fn inline(verb: &'static str, dataset: Option<String>, result: OpResult, stop: bool) -> Routed {
    Routed::Inline {
        verb,
        dataset,
        result,
        stop,
    }
}

/// [`handle_request`] with an explicit arrival timestamp. Heavy verbs
/// queue behind the scheduler, and the worker charges `arrival →
/// execution start` to the `queue_wait_us` histogram; light verbs run
/// here on the connection thread with a near-zero wait.
fn handle_request_at(state: &ServerState, line: &str, received: Instant) -> (Json, bool) {
    let exec_start = Instant::now();
    match route_request(state, line, received) {
        Routed::Inline {
            verb,
            dataset,
            result,
            stop,
        } => {
            let resp = match result {
                Ok(resp) => resp,
                Err((code, msg)) => err_response(code, msg),
            };
            let latency_us = exec_start.elapsed().as_micros() as u64;
            let queue_us = exec_start.saturating_duration_since(received).as_micros() as u64;
            record_request(state, verb, dataset.as_deref(), &resp, latency_us, queue_us);
            (resp, stop)
        }
        Routed::Queued { verb, dataset, rx } => match rx.recv() {
            // The worker recorded this request before replying.
            Ok(resp) => (resp, false),
            // The sender was dropped without an answer — a worker panic.
            // Answer (and record) here so the connection never hangs.
            Err(_) => {
                let resp = err_response(ErrorCode::ExecFailed, "executor dropped the request");
                let latency_us = exec_start.elapsed().as_micros() as u64;
                record_request(state, verb, dataset.as_deref(), &resp, latency_us, 0);
                (resp, false)
            }
        },
    }
}

/// Fold one finished request into the metrics registry — the single
/// recording point shared by the inline path and the executor workers,
/// so the exact-count invariants (a `metrics` scrape reports precisely
/// the requests answered before it) hold regardless of which side
/// answered.
fn record_request(
    state: &ServerState,
    verb: &'static str,
    dataset: Option<&str>,
    resp: &Json,
    latency_us: u64,
    queue_us: u64,
) {
    let m = &state.metrics;
    m.counter("requests_total", &[]).inc();
    m.counter("requests_total", &[("verb", verb)]).inc();
    if resp.get("ok") != Some(&Json::Bool(true)) {
        m.counter("errors_total", &[]).inc();
        m.counter("errors_total", &[("verb", verb)]).inc();
    }
    m.histogram("request_latency_us", &[]).record(latency_us);
    m.histogram("request_latency_us", &[("verb", verb)])
        .record(latency_us);
    m.histogram("queue_wait_us", &[("verb", verb)])
        .record(queue_us);
    if let Some(ds) = dataset {
        m.histogram("dataset_request_latency_us", &[("dataset", ds)])
            .record(latency_us);
    }
}

/// Parse, validate, and route one request line: light verbs execute
/// inline, heavy verbs (`mxm`, `app`, `update`) go through scheduler
/// admission.
fn route_request(state: &ServerState, line: &str, received: Instant) -> Routed {
    if state.is_shutting_down() {
        return inline(
            "rejected",
            None,
            Err((
                ErrorCode::ShuttingDown,
                "server is shutting down".to_string(),
            )),
            false,
        );
    }
    let req = match json::parse(line) {
        Ok(v @ Json::Obj(_)) => v,
        Ok(_) => {
            return inline(
                "invalid",
                None,
                Err((
                    ErrorCode::BadRequest,
                    "request must be a JSON object".to_string(),
                )),
                false,
            )
        }
        Err(e) => {
            return inline(
                "invalid",
                None,
                Err((ErrorCode::BadRequest, format!("invalid JSON: {e}"))),
                false,
            )
        }
    };
    state.requests.fetch_add(1, Ordering::Relaxed);
    let op = match req.get("op").and_then(Json::as_str) {
        Some(s) => s.to_string(),
        None => {
            return inline(
                "invalid",
                None,
                Err((ErrorCode::BadRequest, "'op' must be a string".to_string())),
                false,
            )
        }
    };
    // The dataset label for per-dataset latency series: `mxm`/`app`
    // address one via "dataset"; `load`/`unload` via "name".
    let dataset = req
        .get("dataset")
        .or_else(|| req.get("name"))
        .and_then(Json::as_str)
        .map(str::to_string);
    if op == "shutdown" {
        return inline(
            "shutdown",
            dataset,
            Ok(ok_response(vec![
                ("op", Json::str("shutdown")),
                ("stopping", true.into()),
            ])),
            true,
        );
    }
    match op.as_str() {
        "ping" => inline("ping", dataset, op_ping(state), false),
        "load" => {
            let r = op_load(state, &req);
            inline("load", dataset, r, false)
        }
        "list" => inline("list", dataset, op_list(state), false),
        "unload" => {
            let r = op_unload(state, &req);
            inline("unload", dataset, r, false)
        }
        "mxm" => schedule_heavy(state, "mxm", req, dataset, received),
        "app" => schedule_heavy(state, "app", req, dataset, received),
        // Updates are heavy verbs: the merge/rebuild is kernel-sized
        // work, so they drain through admission like `mxm`/`app` (and
        // are answered `busy` under overload instead of piling up).
        "update" => schedule_heavy(state, "update", req, dataset, received),
        "stats" => inline("stats", dataset, op_stats(state), false),
        "metrics" => {
            let r = op_metrics(state, &req);
            inline("metrics", dataset, r, false)
        }
        other => inline(
            "unknown",
            dataset,
            Err((
                ErrorCode::UnknownOp,
                format!(
                "unknown op '{other}' (expected ping|load|list|unload|mxm|app|update|stats|metrics|shutdown)"
            ),
            )),
            false,
        ),
    }
}

/// Admit one heavy verb into the scheduler, or answer inline when it
/// cannot be queued: malformed (`bad_request` before a slot is wasted),
/// already past its deadline, or rejected by a full queue (`busy` with a
/// `retry_after_ms` hint).
fn schedule_heavy(
    state: &ServerState,
    verb: &'static str,
    req: Json,
    dataset: Option<String>,
    received: Instant,
) -> Routed {
    // The execution budget counts from arrival, so time spent queued
    // spends it too — that is the point: a client that gave up by its
    // deadline should not have stale work run on its behalf.
    let deadline_ms = match opt_u64(&req, "deadline_ms", 0) {
        Ok(ms) => ms,
        Err(msg) => return inline(verb, dataset, Err(bad(msg)), false),
    };
    let deadline = (deadline_ms > 0).then(|| received + Duration::from_millis(deadline_ms));
    // Validate `mxm` fully at admission: an unknown dataset or a bad
    // parameter never occupies a queue slot, and the fuse key needs the
    // parsed, defaulted parameters anyway. (`app` validates on the
    // worker; its errors still come back on the reply channel.)
    let fuse_key = if verb == "mxm" {
        match parse_mxm(state, &req) {
            Ok(p) => Some(p.fuse_key()),
            Err(e) => return inline(verb, dataset, Err(e), false),
        }
    } else {
        None
    };
    if deadline.is_some_and(|d| Instant::now() >= d) {
        state.metrics.counter("deadline_exceeded_total", &[]).inc();
        return inline(
            verb,
            dataset,
            Err((
                ErrorCode::DeadlineExceeded,
                format!("deadline of {deadline_ms} ms expired before admission"),
            )),
            false,
        );
    }
    let (tx, rx) = mpsc::channel();
    let job = Job {
        verb,
        req,
        fuse_key,
        dataset: dataset.clone(),
        received,
        deadline,
        reply: tx,
    };
    match state.scheduler.submit(job) {
        Admission::Enqueued => Routed::Queued { verb, dataset, rx },
        Admission::Busy {
            retry_after_ms,
            queued,
        } => {
            state.metrics.counter("rejected_busy_total", &[]).inc();
            // `Ok` despite being an error response: the `busy` object
            // carries `retry_after_ms` inside `error`, which the plain
            // `(code, message)` error path cannot express. It still
            // counts as an error (`"ok": false`) in the metrics.
            let resp = err_response_with(
                ErrorCode::Busy,
                format!("admission queue full ({queued} waiting); retry in ~{retry_after_ms} ms"),
                vec![("retry_after_ms", retry_after_ms.into())],
            );
            inline(verb, dataset, Ok(resp), false)
        }
        Admission::Closed => inline(
            verb,
            dataset,
            Err((
                ErrorCode::ShuttingDown,
                "server is shutting down".to_string(),
            )),
            false,
        ),
    }
}

fn op_ping(state: &ServerState) -> OpResult {
    Ok(ok_response(vec![
        ("op", Json::str("ping")),
        ("pong", true.into()),
        ("version", Json::str(env!("CARGO_PKG_VERSION"))),
        ("simd", Json::str(masked_spgemm::simd::level().name())),
        ("uptime_s", state.started.elapsed().as_secs_f64().into()),
        ("datasets", state.registry.len().into()),
    ]))
}

fn op_load(state: &ServerState, req: &Json) -> OpResult {
    let path = req_str(req, "path").map_err(bad)?;
    let name = opt_str(req, "name").map_err(bad)?;
    let parse_threads =
        opt_u64(req, "parse_threads", state.config.parse_threads as u64).map_err(bad)? as usize;
    let cache = match opt_str(req, "cache").map_err(bad)? {
        None => state.config.cache,
        Some("readwrite") => CachePolicy::ReadWrite,
        Some("readonly") => CachePolicy::ReadOnly,
        Some("off") => CachePolicy::Off,
        Some(other) => {
            return Err(bad(format!(
                "'cache' must be readwrite|readonly|off, got '{other}'"
            )))
        }
    };
    let mmap = opt_bool(req, "mmap", state.config.mmap).map_err(bad)?;
    let pattern = opt_bool(req, "pattern", state.config.pattern).map_err(bad)?;
    let pin = opt_bool(req, "pin", false).map_err(bad)?;
    let out = state
        .registry
        .load(
            path,
            name,
            &LoadOpts {
                policy: cache,
                parse_threads,
                mmap,
                pattern,
            },
            pin,
        )
        .map_err(reg_err)?;
    if !out.evicted.is_empty() {
        state
            .metrics
            .counter("evictions_total", &[])
            .add(out.evicted.len() as u64);
    }
    let ds = &out.ds;
    let r = &ds.ingest;
    // Absorb the IngestReport into the metrics registry: cumulative
    // totals plus an ingest-latency histogram alongside the request one.
    let m = &state.metrics;
    m.counter("ingest_bytes_total", &[]).add(r.bytes);
    m.counter("ingest_entries_total", &[]).add(r.entries as u64);
    m.histogram("ingest_latency_us", &[])
        .record((r.seconds * 1e6) as u64);
    Ok(ok_response(vec![
        ("op", Json::str("load")),
        ("name", Json::str(&ds.name)),
        ("path", Json::str(&ds.path)),
        ("nrows", ds.matrix.nrows().into()),
        ("ncols", ds.matrix.ncols().into()),
        ("nnz", ds.matrix.nnz().into()),
        ("adj_nnz", ds.adj.nnz().into()),
        ("mem_bytes", ds.mem_bytes().into()),
        ("backend", Json::str(ds.backend().name())),
        ("mapped_bytes", ds.mapped_bytes().into()),
        ("pattern", ds.pattern().into()),
        ("unit_bytes", ds.unit_bytes().into()),
        ("pinned", pin.into()),
        // Full disclosure: which datasets the memory budget pushed out
        // to make room. Their next request gets a typed `evicted` error.
        (
            "evicted",
            Json::Arr(out.evicted.iter().map(Json::str).collect()),
        ),
        (
            "ingest",
            Json::obj(vec![
                ("outcome", Json::Str(format!("{:?}", r.outcome))),
                ("bytes", r.bytes.into()),
                ("entries", r.entries.into()),
                ("seconds", r.seconds.into()),
                ("mb_per_s", mb_per_s(r.bytes, r.seconds).into()),
                ("pattern", r.pattern.into()),
            ]),
        ),
    ]))
}

fn op_list(state: &ServerState) -> OpResult {
    let datasets: Vec<Json> = state
        .registry
        .list()
        .iter()
        .map(|info| {
            let ds = &info.ds;
            Json::obj(vec![
                ("name", Json::str(&ds.name)),
                ("path", Json::str(&ds.path)),
                ("nrows", ds.matrix.nrows().into()),
                ("nnz", ds.matrix.nnz().into()),
                ("adj_nnz", ds.adj.nnz().into()),
                ("mem_bytes", ds.mem_bytes().into()),
                ("backend", Json::str(ds.backend().name())),
                ("mapped_bytes", ds.mapped_bytes().into()),
                ("pattern", ds.pattern().into()),
                ("unit_bytes", ds.unit_bytes().into()),
                ("age_seconds", ds.loaded_at.elapsed().as_secs_f64().into()),
                ("version", info.version.into()),
                ("delta_nnz", info.delta_nnz.into()),
                ("pinned", info.pinned.into()),
                ("quarantined", info.quarantined.into()),
                ("panics", u64::from(info.panics).into()),
            ])
        })
        .collect();
    Ok(ok_response(vec![
        ("op", Json::str("list")),
        ("count", datasets.len().into()),
        ("datasets", Json::Arr(datasets)),
    ]))
}

fn op_unload(state: &ServerState, req: &Json) -> OpResult {
    let name = req_str(req, "name").map_err(bad)?;
    state.registry.unload(name).map_err(reg_err)?;
    Ok(ok_response(vec![
        ("op", Json::str("unload")),
        ("name", Json::str(name)),
    ]))
}

/// A fully parsed and validated `mxm` request, ready to execute.
struct MxmParams {
    dataset: String,
    algo: Algorithm,
    mode: MaskMode,
    phases: Phases,
    schedule: RowSchedule,
    threads: usize,
    reps: usize,
}

impl MxmParams {
    /// Fusion compatibility key: everything that shapes the kernel pass
    /// *except* the mask mode. Jobs sharing a key ride one batch and are
    /// partitioned by mode at execution, so normal and complemented
    /// queries against the same dataset still fuse among themselves.
    fn fuse_key(&self) -> String {
        format!(
            "{}|{}|{}|{}|{}|{}",
            self.dataset,
            self.algo.name(),
            if self.phases == Phases::One { "1" } else { "2" },
            self.schedule.name(),
            self.threads,
            self.reps
        )
    }
}

fn parse_mxm(state: &ServerState, req: &Json) -> Result<MxmParams, (ErrorCode, String)> {
    let name = req_str(req, "dataset").map_err(bad)?;
    // Resolve the dataset now so an unknown name is rejected at
    // admission instead of occupying a queue slot; execution resolves
    // again (the dataset may be unloaded while the job waits).
    let ds = state.registry.get(name).map_err(reg_err)?;
    let algo: Algorithm = opt_parse(req, "algo", "auto")?;
    let mode: MaskMode = opt_parse(req, "mask", "normal")?;
    let phases: Phases = opt_parse(req, "phases", "1")?;
    let schedule: RowSchedule = opt_parse(req, "schedule", state.config.schedule.name())?;
    let threads = opt_u64(req, "threads", 0).map_err(bad)? as usize;
    let reps = opt_u64(req, "reps", 1).map_err(bad)?.max(1) as usize;
    Ok(MxmParams {
        dataset: ds.name.clone(),
        algo,
        mode,
        phases,
        schedule,
        threads,
        reps,
    })
}

/// What one kernel pass produced — shared by every rider in a fused
/// group; the per-job response is layered on by [`mxm_response`].
struct PassOut {
    secs: f64,
    nnz: usize,
    fingerprint: String,
    hits: u64,
    misses: u64,
    is_pull: bool,
}

fn run_mxm_pass(
    state: &ServerState,
    ds: &Dataset,
    p: &MxmParams,
    mode: MaskMode,
    deadline: Option<Instant>,
) -> Result<PassOut, (ErrorCode, String)> {
    let a = &ds.matrix;
    let mask = &ds.mask;
    let opts = ExecOpts {
        schedule: p.schedule,
        ws_pool: Some(&state.ws_pool),
        stats: Some(&state.exec_stats),
        deadline,
    };
    let hits0 = state.ws_pool.hits();
    let misses0 = state.ws_pool.misses();
    let run_one = || -> Result<Csr<f64>, masked_spgemm::Error> {
        if p.algo == Algorithm::Inner {
            // The registry's pre-transposed operand: the pull scheme
            // skips the per-call transpose entirely. (It has no row
            // drive, so no phase-boundary deadline checks either — the
            // budget is still enforced at admission and dequeue.)
            masked_mxm_with_bt::<PlusTimesF64, ()>(mask, a, &ds.matrix_t, mode, p.phases)
        } else {
            masked_mxm_with_opts::<PlusTimesF64, ()>(mask, a, a, p.algo, mode, p.phases, &opts)
        }
    };
    let work = || time_best(p.reps, run_one);
    let (secs, c) = if p.threads > 0 {
        with_threads(p.threads, work)
    } else {
        work()
    };
    let c = c.map_err(|e| match e {
        masked_spgemm::Error::DeadlineExceeded => (ErrorCode::DeadlineExceeded, e.to_string()),
        other => (ErrorCode::ExecFailed, other.to_string()),
    })?;
    Ok(PassOut {
        secs,
        nnz: c.nnz(),
        fingerprint: format!("{:016x}", csr_fingerprint(&c)),
        hits: state.ws_pool.hits() - hits0,
        misses: state.ws_pool.misses() - misses0,
        // The explicit pull path has no row drive and leases no
        // workspaces; echoing a schedule or claiming a warm pool would
        // be fiction.
        is_pull: p.algo == Algorithm::Inner,
    })
}

/// One rider's view of a (possibly fused) pass: `fused_group` is how
/// many requests shared the kernel execution; `fused` is the flag a
/// client can switch on without comparing counts.
fn mxm_response(
    ds: &Dataset,
    p: &MxmParams,
    mode: MaskMode,
    pass: &PassOut,
    fused_group: usize,
) -> Json {
    ok_response(vec![
        ("op", Json::str("mxm")),
        ("dataset", Json::str(&ds.name)),
        ("algo", Json::str(p.algo.name())),
        ("mask", Json::str(mask_name(mode))),
        (
            "phases",
            Json::str(if p.phases == Phases::One { "1" } else { "2" }),
        ),
        (
            "schedule",
            if pass.is_pull {
                Json::Null
            } else {
                Json::str(p.schedule.name())
            },
        ),
        ("threads", p.threads.into()),
        ("reps", p.reps.into()),
        ("seconds", pass.secs.into()),
        ("gflops", gflops(ds.mxm_flops, pass.secs).into()),
        ("nnz", pass.nnz.into()),
        ("fingerprint", Json::Str(pass.fingerprint.clone())),
        ("fused", (fused_group > 1).into()),
        ("fused_group", fused_group.into()),
        (
            "pool",
            if pass.is_pull {
                Json::Null
            } else {
                Json::obj(vec![
                    ("hits", pass.hits.into()),
                    ("misses", pass.misses.into()),
                    ("warm", (pass.misses == 0).into()),
                ])
            },
        ),
    ])
}

/// Execute one scheduler batch on an executor worker: jobs whose
/// deadline expired while queued are answered without running, `app`
/// jobs run singly, and `mxm` jobs — batched by the scheduler only when
/// their fuse keys match — share one kernel pass per mask mode.
pub(crate) fn execute_batch(state: &Arc<ServerState>, batch: Vec<Job>) {
    let mut mxm = Vec::new();
    for job in batch {
        if job.expired() {
            state.metrics.counter("deadline_exceeded_total", &[]).inc();
            let resp = err_response(
                ErrorCode::DeadlineExceeded,
                "deadline expired while the request was queued",
            );
            finish_job(state, job, resp, Instant::now());
            continue;
        }
        match job.verb {
            "app" => {
                let exec_start = Instant::now();
                let resp = match op_app(state, &job.req) {
                    Ok(resp) => resp,
                    Err((code, msg)) => err_response(code, msg),
                };
                finish_job(state, job, resp, exec_start);
            }
            // Updates never fuse (each batch mutates state), so they run
            // singly like `app` — but still on an executor slot.
            "update" => {
                let exec_start = Instant::now();
                let resp = match op_update(state, &job.req) {
                    Ok(resp) => resp,
                    Err((code, msg)) => err_response(code, msg),
                };
                finish_job(state, job, resp, exec_start);
            }
            _ => mxm.push(job),
        }
    }
    if !mxm.is_empty() {
        exec_mxm_group(state, mxm);
    }
}

/// Run a group of fuse-compatible `mxm` jobs: one kernel pass per
/// distinct mask mode, the output fanned back to every rider with its
/// own fingerprint and timing.
fn exec_mxm_group(state: &ServerState, jobs: Vec<Job>) {
    let exec_start = Instant::now();
    // Re-parse on the worker: parsing is deterministic (admission
    // already vetted it), but the dataset must be resolved fresh — it
    // may have been unloaded while the job waited.
    let mut by_mode: Vec<(MaskMode, Vec<(Job, MxmParams)>)> = Vec::new();
    for job in jobs {
        match parse_mxm(state, &job.req) {
            Ok(p) => match by_mode.iter_mut().find(|(m, _)| *m == p.mode) {
                Some((_, group)) => group.push((job, p)),
                None => by_mode.push((p.mode, vec![(job, p)])),
            },
            Err((code, msg)) => {
                finish_job(state, job, err_response(code, msg), exec_start);
            }
        }
    }
    for (mode, group) in by_mode {
        let k = group.len();
        if k > 1 {
            // k requests shared one pass: k-1 kernel executions saved.
            state
                .metrics
                .counter("fused_requests_total", &[])
                .add((k - 1) as u64);
        }
        // The pass runs once for everyone, so it gets the *loosest*
        // deadline in the group: by the time that one expires, every
        // earlier deadline has expired too. Any rider without a budget
        // disables kernel cancellation for the whole pass.
        let deadline = if group.iter().all(|(job, _)| job.deadline.is_some()) {
            group.iter().filter_map(|(job, _)| job.deadline).max()
        } else {
            None
        };
        let p = &group[0].1;
        let outcome = match state.registry.get(&p.dataset) {
            Ok(ds) => {
                match catch_unwind(AssertUnwindSafe(|| {
                    run_mxm_pass(state, &ds, p, mode, deadline)
                })) {
                    Ok(r) => r.map(|pass| (ds, pass)),
                    Err(payload) => {
                        // A kernel panic. Attribute it to the dataset
                        // (repeat offenders get quarantined), answer every
                        // rider with a typed error, then re-raise: the
                        // worker thread dies and its sentinel respawns a
                        // replacement, so the panic costs one thread spawn
                        // instead of an executor slot. Any *other* mode
                        // groups in this batch have their reply senders
                        // dropped by the unwind; the connection side's
                        // recv-error path answers (and records) those.
                        let msg = panic_msg(payload);
                        let verdict = state.registry.note_panic(&p.dataset);
                        if verdict.newly_quarantined {
                            state.metrics.counter("quarantined_total", &[]).inc();
                        }
                        let text = format!("kernel panicked on dataset '{}': {msg}", p.dataset);
                        for (job, _) in group {
                            finish_job(
                                state,
                                job,
                                err_response(ErrorCode::ExecFailed, text.clone()),
                                exec_start,
                            );
                        }
                        std::panic::resume_unwind(Box::new(msg));
                    }
                }
            }
            Err(e) => Err(reg_err(e)),
        };
        match outcome {
            Ok((ds, pass)) => {
                for (job, p) in group {
                    let resp = mxm_response(&ds, &p, mode, &pass, k);
                    finish_job(state, job, resp, exec_start);
                }
            }
            Err((code, msg)) => {
                if code == ErrorCode::DeadlineExceeded {
                    state
                        .metrics
                        .counter("deadline_exceeded_total", &[])
                        .add(k as u64);
                }
                for (job, _) in group {
                    finish_job(state, job, err_response(code, msg.clone()), exec_start);
                }
            }
        }
    }
}

/// Record one queued job's metrics and send its response. Recording
/// happens *before* the reply, so a client that scrapes `metrics`
/// right after its answer sees its own request already counted — the
/// same exact-count invariant the inline path provides.
fn finish_job(state: &ServerState, job: Job, resp: Json, exec_start: Instant) {
    let latency_us = exec_start.elapsed().as_micros() as u64;
    let queue_us = exec_start
        .saturating_duration_since(job.received)
        .as_micros() as u64;
    record_request(
        state,
        job.verb,
        job.dataset.as_deref(),
        &resp,
        latency_us,
        queue_us,
    );
    let _ = job.reply.send(resp);
}

fn op_app(state: &ServerState, req: &Json) -> OpResult {
    let name = req_str(req, "dataset").map_err(bad)?;
    let ds = state.registry.get(name).map_err(reg_err)?;
    let app: App = opt_parse(req, "app", "tc")?;
    let scheme: Scheme = opt_parse(req, "scheme", "auto")?;
    let schedule: RowSchedule = opt_parse(req, "schedule", state.config.schedule.name())?;
    let threads = opt_u64(req, "threads", 0).map_err(bad)? as usize;
    let k = opt_u64(req, "k", 4).map_err(bad)? as usize;
    let batch = opt_u64(req, "batch", 16).map_err(bad)? as usize;
    if app == App::Ktruss && k < 3 {
        return Err(bad(format!("k-truss needs k >= 3, got {k}")));
    }
    if app == App::Bc && !scheme.supports_complement() {
        return Err((
            ErrorCode::ExecFailed,
            format!(
                "scheme {} cannot run BC (no complemented-mask support)",
                scheme.name()
            ),
        ));
    }
    let opts = ExecOpts {
        schedule,
        ws_pool: Some(&state.ws_pool),
        stats: Some(&state.exec_stats),
        // Apps run many chained passes and map kernel errors to panics;
        // their deadline is enforced at admission and dequeue only.
        deadline: None,
    };
    let hits0 = state.ws_pool.hits();
    let misses0 = state.ws_pool.misses();
    // The application layer asserts/expects on kernel errors rather than
    // returning them; a panic must become a protocol error, not a dead
    // connection with no response.
    let run = || -> Result<Vec<(&'static str, Json)>, String> {
        match app {
            App::Tc => {
                // Snapshot the dataset *with* its update bookkeeping: when
                // cached per-row counts exist and the dataset has moved
                // past them by a known edge batch, the masked-SpGEMM pass
                // shrinks to the affected rows and patches the cache;
                // otherwise (first request, or the edge log overflowed)
                // every row is recounted and the cache stored fresh.
                let snap = state
                    .registry
                    .tc_snapshot(name)
                    .map_err(|e| e.to_string())?;
                match snap.cache {
                    Some(cache) if cache.version < snap.version => {
                        let (rows, patch, perm, secs) = catch_unwind(AssertUnwindSafe(|| {
                            // Replay the *cached* relabeling against the
                            // updated adjacency so the per-row counts stay
                            // comparable across versions.
                            let ops = tricount::prepare_with_perm(&snap.ds.adj, cache.perm.clone());
                            let rows = tricount::affected_rows(&ops, &snap.changed);
                            let (patch, secs) =
                                tricount::recount_rows_with(&ops, &rows, scheme, &opts);
                            (rows, patch, ops.perm, secs)
                        }))
                        .map_err(panic_msg)?;
                        let mut counts = cache.counts;
                        for &i in &rows {
                            counts[i] = patch[i];
                        }
                        let total: u64 = counts.iter().sum();
                        let patched = rows.len();
                        // The store is refused if another update landed
                        // while we counted; the response is still correct
                        // for the version we snapshotted.
                        let stored = state.registry.store_tc_cache(
                            name,
                            TcCache {
                                perm,
                                counts,
                                total,
                                version: snap.version,
                            },
                        );
                        Ok(vec![
                            ("triangles", total.into()),
                            ("mxm_seconds", secs.into()),
                            // A row-subset pass has no honest full-count
                            // FLOP denominator.
                            ("gflops", Json::Null),
                            ("incremental", true.into()),
                            ("patched_rows", patched.into()),
                            ("cached", stored.into()),
                        ])
                    }
                    _ => {
                        let ops = snap.ds.tc_operands();
                        let (counts, secs) = catch_unwind(AssertUnwindSafe(|| {
                            tricount::count_prepared_rows_with(&ops, scheme, &opts)
                        }))
                        .map_err(panic_msg)?;
                        let total: u64 = counts.iter().sum();
                        let stored = state.registry.store_tc_cache(
                            name,
                            TcCache {
                                perm: ops.perm.clone(),
                                counts,
                                total,
                                version: snap.version,
                            },
                        );
                        Ok(vec![
                            ("triangles", total.into()),
                            ("mxm_seconds", secs.into()),
                            ("gflops", gflops(ops.flops, secs).into()),
                            ("incremental", false.into()),
                            ("cached", stored.into()),
                        ])
                    }
                }
            }
            App::Ktruss => {
                let r = catch_unwind(AssertUnwindSafe(|| {
                    ktruss::k_truss_with(&ds.adj, k, scheme, &opts)
                }))
                .map_err(panic_msg)?;
                Ok(vec![
                    ("k", k.into()),
                    ("iterations", r.iterations.into()),
                    ("edges", r.truss.nnz().into()),
                    ("mxm_seconds", r.mxm_seconds.into()),
                    // k-truss has no incremental path: every request runs
                    // against the live matrix from scratch.
                    ("incremental", false.into()),
                ])
            }
            App::Bc => {
                let n = ds.adj.nrows();
                let sources: Vec<usize> = (0..batch.min(n)).collect();
                let nsrc = sources.len();
                let r = catch_unwind(AssertUnwindSafe(|| {
                    bc::betweenness_with(&ds.adj, &sources, scheme, &opts)
                }))
                .map_err(panic_msg)?;
                Ok(vec![
                    ("batch", nsrc.into()),
                    ("depth", r.depth.into()),
                    ("mxm_seconds", r.mxm_seconds.into()),
                    ("total_seconds", r.total_seconds.into()),
                    ("scores_sum", r.scores.iter().sum::<f64>().into()),
                    // BC always recomputes in full, like k-truss.
                    ("incremental", false.into()),
                ])
            }
        }
    };
    let fields = if threads > 0 {
        with_threads(threads, run)
    } else {
        run()
    }
    .map_err(|msg| (ErrorCode::ExecFailed, msg))?;
    let hits = state.ws_pool.hits() - hits0;
    let misses = state.ws_pool.misses() - misses0;
    let mut out = vec![
        ("op", Json::str("app")),
        ("app", Json::str(app.name())),
        ("dataset", Json::str(&ds.name)),
        ("scheme", Json::Str(scheme.name())),
        ("schedule", Json::str(schedule.name())),
    ];
    out.extend(fields);
    out.push((
        "pool",
        Json::obj(vec![
            ("hits", hits.into()),
            ("misses", misses.into()),
            ("warm", (misses == 0).into()),
        ]),
    ));
    Ok(ok_response(out))
}

/// Parse the `"insert"` / `"delete"` arrays of an `update` request into
/// one op batch. Inserts come first, then deletes — a position named in
/// both ends deleted (last write wins in the overlay).
fn parse_update_ops(req: &Json) -> Result<Vec<DeltaOp<f64>>, (ErrorCode, String)> {
    fn idx(v: &Json, what: &str, k: usize) -> Result<Idx, (ErrorCode, String)> {
        v.as_u64()
            .and_then(|n| Idx::try_from(n).ok())
            .ok_or_else(|| bad(format!("{what}[{k}] indices must be 32-bit integers >= 0")))
    }
    let mut ops = Vec::new();
    if let Some(v) = req.get("insert") {
        let arr = v
            .as_arr()
            .ok_or_else(|| bad("'insert' must be an array of [row, col, value] triples".into()))?;
        for (k, e) in arr.iter().enumerate() {
            let t = e
                .as_arr()
                .filter(|t| t.len() == 2 || t.len() == 3)
                .ok_or_else(|| {
                    bad(format!(
                        "'insert'[{k}] must be [row, col] or [row, col, value]"
                    ))
                })?;
            let val = match t.get(2) {
                None => 1.0,
                Some(v) => v
                    .as_f64()
                    .ok_or_else(|| bad(format!("'insert'[{k}] value must be a number")))?,
            };
            ops.push(DeltaOp::Upsert {
                row: idx(&t[0], "'insert'", k)?,
                col: idx(&t[1], "'insert'", k)?,
                val,
            });
        }
    }
    if let Some(v) = req.get("delete") {
        let arr = v
            .as_arr()
            .ok_or_else(|| bad("'delete' must be an array of [row, col] pairs".into()))?;
        for (k, e) in arr.iter().enumerate() {
            let t = e
                .as_arr()
                .filter(|t| t.len() == 2)
                .ok_or_else(|| bad(format!("'delete'[{k}] must be [row, col]")))?;
            ops.push(DeltaOp::Delete {
                row: idx(&t[0], "'delete'", k)?,
                col: idx(&t[1], "'delete'", k)?,
            });
        }
    }
    Ok(ops)
}

fn op_update(state: &ServerState, req: &Json) -> OpResult {
    let name = req_str(req, "dataset").map_err(bad)?;
    let compact = opt_bool(req, "compact", false).map_err(bad)?;
    let ops = parse_update_ops(req)?;
    if ops.is_empty() && !compact {
        return Err(bad(
            "'update' needs 'insert' and/or 'delete' ops (or 'compact': true)".to_string(),
        ));
    }
    let t0 = Instant::now();
    let out = state
        .registry
        .update(name, &ops, compact, state.config.compact_after_nnz)
        .map_err(reg_err)?;
    let secs = t0.elapsed().as_secs_f64();
    let m = &state.metrics;
    m.counter("updates_total", &[]).inc();
    m.counter("updates_total", &[("dataset", name)]).inc();
    if out.compacted {
        m.counter("compactions_total", &[]).inc();
    }
    m.histogram("update_latency_us", &[])
        .record((secs * 1e6) as u64);
    let ds = &out.ds;
    Ok(ok_response(vec![
        ("op", Json::str("update")),
        ("dataset", Json::str(&ds.name)),
        ("version", out.version.into()),
        ("applied", out.applied.into()),
        ("delta_nnz", out.delta_nnz.into()),
        ("compacted", out.compacted.into()),
        ("nrows", ds.matrix.nrows().into()),
        ("nnz", ds.matrix.nnz().into()),
        ("backend", Json::str(ds.backend().name())),
        ("mapped_bytes", ds.mapped_bytes().into()),
        ("seconds", secs.into()),
    ]))
}

fn panic_msg(e: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = e.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = e.downcast_ref::<String>() {
        s.clone()
    } else {
        "kernel panicked".to_string()
    }
}

fn op_stats(state: &ServerState) -> OpResult {
    // One registry snapshot for the array AND the totals, so they always
    // agree even when loads/unloads race this request.
    let resident = state.registry.list();
    let datasets: Vec<Json> = resident
        .iter()
        .map(|info| {
            let ds = &info.ds;
            Json::obj(vec![
                ("name", Json::str(&ds.name)),
                ("mem_bytes", ds.mem_bytes().into()),
                ("backend", Json::str(ds.backend().name())),
                ("mapped_bytes", ds.mapped_bytes().into()),
                ("pattern", ds.pattern().into()),
                ("unit_bytes", ds.unit_bytes().into()),
                ("version", info.version.into()),
                ("delta_nnz", info.delta_nnz.into()),
                ("pinned", info.pinned.into()),
                ("quarantined", info.quarantined.into()),
                ("panics", u64::from(info.panics).into()),
            ])
        })
        .collect();
    let total_mem: u64 = resident.iter().map(|i| i.ds.mem_bytes()).sum();
    let total_mapped: u64 = resident.iter().map(|i| i.ds.mapped_bytes()).sum();
    // The unit arena is one process-wide allocation every pattern dataset
    // views, so its resident cost is reported once, not summed per
    // dataset (the per-dataset `unit_bytes` are view lengths).
    let unit_arena = mspgemm_sparse::unit_arena_bytes() as u64;
    // Active failpoints: empty in production, the injected-fault table
    // under `--fail`/`MXM_FAILPOINTS` — so an operator puzzled by a
    // misbehaving server can ask it whether the faults are intentional.
    let failpoints: Vec<Json> = mspgemm_fault::active()
        .into_iter()
        .map(|(name, task)| Json::obj(vec![("name", Json::Str(name)), ("task", Json::Str(task))]))
        .collect();
    let hits = state.ws_pool.hits();
    let misses = state.ws_pool.misses();
    let takes = hits + misses;
    let busy = match busy_spread(&state.exec_stats.busy_seconds()) {
        Some(sp) => Json::obj(vec![
            ("threads", sp.threads.into()),
            ("max_over_mean", sp.ratio().into()),
        ]),
        None => Json::Null,
    };
    // Overall request-latency quantiles from the unlabeled histogram
    // (the `metrics` verb has the per-verb and per-dataset series).
    let lat = state
        .metrics
        .histogram("request_latency_us", &[])
        .snapshot();
    Ok(ok_response(vec![
        ("op", Json::str("stats")),
        (
            "uptime_seconds",
            state.started.elapsed().as_secs_f64().into(),
        ),
        ("requests", state.requests().into()),
        (
            "requests_total",
            state.metrics.counter("requests_total", &[]).get().into(),
        ),
        (
            "errors_total",
            state.metrics.counter("errors_total", &[]).get().into(),
        ),
        (
            "latency",
            Json::obj(vec![
                ("p50", (lat.quantile(0.50) as f64 / 1e6).into()),
                ("p95", (lat.quantile(0.95) as f64 / 1e6).into()),
                ("p99", (lat.quantile(0.99) as f64 / 1e6).into()),
                ("count", lat.count.into()),
            ]),
        ),
        ("simd", Json::str(masked_spgemm::simd::level().name())),
        ("datasets", Json::Arr(datasets)),
        ("total_mem_bytes", total_mem.into()),
        ("total_mapped_bytes", total_mapped.into()),
        ("unit_arena_bytes", unit_arena.into()),
        (
            "max_resident_bytes",
            state.registry.max_resident_bytes().into(),
        ),
        ("failpoints", Json::Arr(failpoints)),
        (
            "scheduler",
            Json::obj(vec![
                ("workers", state.scheduler.workers().into()),
                ("queue_depth", state.scheduler.depth().into()),
                ("queued", state.scheduler.queued().into()),
            ]),
        ),
        (
            "pool",
            Json::obj(vec![
                ("hits", hits.into()),
                ("misses", misses.into()),
                ("retained", state.ws_pool.retained().into()),
                (
                    "hit_rate",
                    if takes > 0 {
                        (hits as f64 / takes as f64).into()
                    } else {
                        Json::Null
                    },
                ),
            ]),
        ),
        ("busy", busy),
    ]))
}

/// Refresh the gauges that mirror state owned elsewhere (`WsPool`
/// counters, `ExecStats` busy spread, registry residency), so every
/// snapshot the `metrics` verb serves is current without those
/// subsystems having to push on each change.
fn publish_gauges(state: &ServerState) {
    let m = &state.metrics;
    m.gauge("uptime_seconds", &[])
        .set(state.started.elapsed().as_secs_f64());
    // SIMD level as an ordinal (0 = scalar, 1 = sse4.2, 2 = avx2), with
    // the level name on the label so dashboards can show either form.
    let simd = masked_spgemm::simd::level();
    m.gauge("simd_level", &[("level", simd.name())])
        .set(simd as u8 as f64);
    m.gauge("ws_pool_hits", &[])
        .set(state.ws_pool.hits() as f64);
    m.gauge("ws_pool_misses", &[])
        .set(state.ws_pool.misses() as f64);
    m.gauge("ws_pool_retained", &[])
        .set(state.ws_pool.retained() as f64);
    if let Some(sp) = busy_spread(&state.exec_stats.busy_seconds()) {
        m.gauge("busy_threads", &[]).set(sp.threads as f64);
        m.gauge("busy_max_over_mean", &[]).set(sp.ratio());
    }
    m.gauge("scheduler_queued", &[])
        .set(state.scheduler.queued() as f64);
    let resident = state.registry.list();
    m.gauge("datasets_resident", &[]).set(resident.len() as f64);
    m.gauge("resident_bytes", &[])
        .set(resident.iter().map(|i| i.ds.mem_bytes()).sum::<u64>() as f64);
    m.gauge("mapped_bytes", &[])
        .set(resident.iter().map(|i| i.ds.mapped_bytes()).sum::<u64>() as f64);
    m.gauge("unit_arena_bytes", &[])
        .set(mspgemm_sparse::unit_arena_bytes() as f64);
    m.gauge("datasets_quarantined", &[])
        .set(resident.iter().filter(|i| i.quarantined).count() as f64);
    m.gauge("delta_nnz", &[])
        .set(resident.iter().map(|i| i.delta_nnz as u64).sum::<u64>() as f64);
}

fn series_fields(series: &Series) -> Vec<(&'static str, Json)> {
    vec![
        ("name", Json::str(&series.name)),
        (
            "labels",
            Json::Obj(
                series
                    .labels
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                    .collect(),
            ),
        ),
    ]
}

fn hist_json(series: &Series, h: &HistSnapshot) -> Json {
    let mut fields = series_fields(series);
    fields.extend([
        ("count", h.count.into()),
        ("sum", h.sum.into()),
        ("max", h.max.into()),
        ("mean", h.mean().into()),
        ("p50", h.quantile(0.50).into()),
        ("p95", h.quantile(0.95).into()),
        ("p99", h.quantile(0.99).into()),
        (
            "buckets",
            Json::Arr(
                h.nonzero()
                    .into_iter()
                    .map(|(le, n)| Json::obj(vec![("le", le.into()), ("count", n.into())]))
                    .collect(),
            ),
        ),
    ]);
    Json::obj(fields)
}

fn op_metrics(state: &ServerState, req: &Json) -> OpResult {
    publish_gauges(state);
    let snap = state.metrics.snapshot();
    match opt_str(req, "format").map_err(bad)?.unwrap_or("json") {
        "prometheus" => Ok(ok_response(vec![
            ("op", Json::str("metrics")),
            ("format", Json::str("prometheus")),
            ("content_type", Json::str("text/plain; version=0.0.4")),
            ("text", Json::Str(snap.to_prometheus())),
        ])),
        "json" => {
            let counters: Vec<Json> = snap
                .counters
                .iter()
                .map(|(s, v)| {
                    let mut f = series_fields(s);
                    f.push(("value", (*v).into()));
                    Json::obj(f)
                })
                .collect();
            let gauges: Vec<Json> = snap
                .gauges
                .iter()
                .map(|(s, v)| {
                    let mut f = series_fields(s);
                    f.push(("value", (*v).into()));
                    Json::obj(f)
                })
                .collect();
            let histograms: Vec<Json> = snap
                .histograms
                .iter()
                .map(|(s, h)| hist_json(s, h))
                .collect();
            Ok(ok_response(vec![
                ("op", Json::str("metrics")),
                ("format", Json::str("json")),
                ("counters", Json::Arr(counters)),
                ("gauges", Json::Arr(gauges)),
                ("histograms", Json::Arr(histograms)),
            ]))
        }
        other => Err(bad(format!(
            "'format' must be json|prometheus, got '{other}'"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state_with(dir_tag: &str, n: usize) -> (Arc<ServerState>, String) {
        let dir = std::env::temp_dir().join(format!("mspgemm_serve_server_{dir_tag}"));
        std::fs::create_dir_all(&dir).unwrap();
        let mtx = dir.join("g.mtx");
        let g = mspgemm_gen::er_symmetric(n, 6, 3);
        mspgemm_io::mtx::write_mtx_file(&mtx, &g).unwrap();
        let state = ServerState::new(ServeConfig {
            cache: CachePolicy::Off,
            ..ServeConfig::default()
        });
        (state, mtx.to_str().unwrap().to_string())
    }

    fn ok(state: &ServerState, line: &str) -> Json {
        let (resp, stop) = handle_request(state, line);
        assert!(!stop);
        assert_eq!(
            resp.get("ok"),
            Some(&Json::Bool(true)),
            "expected success: {}",
            resp.to_line()
        );
        resp
    }

    fn err_code(state: &ServerState, line: &str) -> String {
        let (resp, _) = handle_request(state, line);
        assert_eq!(
            resp.get("ok"),
            Some(&Json::Bool(false)),
            "{}",
            resp.to_line()
        );
        resp.get("error")
            .unwrap()
            .get("code")
            .unwrap()
            .as_str()
            .unwrap()
            .to_string()
    }

    #[test]
    fn request_lifecycle_load_mxm_warm_unload() {
        let (state, path) = state_with("lifecycle", 120);
        ok(&state, r#"{"op":"ping"}"#);
        let resp = ok(
            &state,
            &format!(r#"{{"op":"load","path":"{path}","name":"g"}}"#),
        );
        assert_eq!(resp.get("name").unwrap().as_str(), Some("g"));

        let q = r#"{"op":"mxm","dataset":"g","algo":"hash","phases":2,"reps":1}"#;
        let first = ok(&state, q);
        let second = ok(&state, q);
        assert_eq!(
            first.get("fingerprint"),
            second.get("fingerprint"),
            "identical requests must return identical results"
        );
        let pool = second.get("pool").unwrap();
        assert_eq!(pool.get("misses").unwrap().as_u64(), Some(0));
        assert_eq!(pool.get("warm").unwrap().as_bool(), Some(true));

        ok(&state, r#"{"op":"unload","name":"g"}"#);
        assert_eq!(err_code(&state, q), "unknown_dataset");
    }

    #[test]
    fn inner_reports_no_schedule_or_pool() {
        let (state, path) = state_with("inner_null", 90);
        ok(
            &state,
            &format!(r#"{{"op":"load","path":"{path}","name":"g"}}"#),
        );
        let resp = ok(&state, r#"{"op":"mxm","dataset":"g","algo":"inner"}"#);
        assert_eq!(
            resp.get("schedule"),
            Some(&Json::Null),
            "{}",
            resp.to_line()
        );
        assert_eq!(resp.get("pool"), Some(&Json::Null), "{}", resp.to_line());
    }

    #[test]
    fn error_codes_cover_the_protocol() {
        let (state, path) = state_with("errors", 60);
        assert_eq!(err_code(&state, "not json"), "bad_request");
        assert_eq!(err_code(&state, "[1,2]"), "bad_request");
        assert_eq!(err_code(&state, r#"{"op":"frobnicate"}"#), "unknown_op");
        assert_eq!(err_code(&state, r#"{"op":"mxm"}"#), "bad_request");
        assert_eq!(
            err_code(&state, r#"{"op":"mxm","dataset":"nope"}"#),
            "unknown_dataset"
        );
        assert_eq!(
            err_code(&state, r#"{"op":"load","path":"/no/such/file.mtx"}"#),
            "load_failed"
        );
        ok(&state, &format!(r#"{{"op":"load","path":"{path}"}}"#));
        assert_eq!(
            err_code(&state, &format!(r#"{{"op":"load","path":"{path}"}}"#)),
            "already_loaded"
        );
        // MCA × complement is a kernel-level rejection.
        assert_eq!(
            err_code(
                &state,
                r#"{"op":"mxm","dataset":"g","algo":"mca","mask":"complement"}"#
            ),
            "exec_failed"
        );
        // Unknown algo is a request-level rejection.
        assert_eq!(
            err_code(&state, r#"{"op":"mxm","dataset":"g","algo":"quantum"}"#),
            "bad_request"
        );
    }

    #[test]
    fn apps_run_and_reuse_the_pool() {
        let (state, path) = state_with("apps", 100);
        ok(
            &state,
            &format!(r#"{{"op":"load","path":"{path}","name":"g"}}"#),
        );
        let tc = ok(
            &state,
            r#"{"op":"app","dataset":"g","app":"tc","scheme":"hash-1p"}"#,
        );
        assert!(tc.get("triangles").unwrap().as_u64().is_some());
        let tc2 = ok(
            &state,
            r#"{"op":"app","dataset":"g","app":"tc","scheme":"hash-1p"}"#,
        );
        assert_eq!(tc.get("triangles"), tc2.get("triangles"));
        assert_eq!(
            tc2.get("pool").unwrap().get("misses").unwrap().as_u64(),
            Some(0),
            "second tc must be allocation-free"
        );
        let kt = ok(&state, r#"{"op":"app","dataset":"g","app":"ktruss","k":3}"#);
        assert!(kt.get("iterations").unwrap().as_u64().unwrap() >= 1);
        let bc = ok(
            &state,
            r#"{"op":"app","dataset":"g","app":"bc","batch":4,"scheme":"msa-1p"}"#,
        );
        assert_eq!(bc.get("batch").unwrap().as_u64(), Some(4));
        // BC × MCA is rejected before execution.
        assert_eq!(
            err_code(
                &state,
                r#"{"op":"app","dataset":"g","app":"bc","scheme":"mca-1p"}"#
            ),
            "exec_failed"
        );
        assert_eq!(
            err_code(&state, r#"{"op":"app","dataset":"g","app":"ktruss","k":2}"#),
            "bad_request"
        );
    }

    #[test]
    fn pattern_load_parity_and_accounting() {
        // A weighted graph: chained triangles (i, i+1, i+2) with non-unit
        // weights, so a pattern load genuinely discards something.
        let dir = std::env::temp_dir().join("mspgemm_serve_server_pattern_parity");
        std::fs::create_dir_all(&dir).unwrap();
        let n = 30usize;
        let mut body = String::from("%%MatrixMarket matrix coordinate real symmetric\n");
        body.push_str(&format!("{n} {n} {}\n", (n - 1) + (n - 2)));
        for i in 1..n {
            body.push_str(&format!("{} {} {}.5\n", i + 1, i, (i % 7) + 2));
        }
        for i in 1..n - 1 {
            body.push_str(&format!("{} {} 3.25\n", i + 2, i));
        }
        let mtx = dir.join("tri.mtx");
        std::fs::write(&mtx, body).unwrap();
        let path = mtx.to_str().unwrap();
        let state = ServerState::new(ServeConfig {
            cache: CachePolicy::Off,
            ..ServeConfig::default()
        });

        let v = ok(
            &state,
            &format!(r#"{{"op":"load","path":"{path}","name":"v"}}"#),
        );
        assert_eq!(v.get("pattern").unwrap().as_bool(), Some(false));
        assert_eq!(v.get("unit_bytes").unwrap().as_u64(), Some(0));
        let p = ok(
            &state,
            &format!(r#"{{"op":"load","path":"{path}","name":"p","pattern":true}}"#),
        );
        assert_eq!(p.get("pattern").unwrap().as_bool(), Some(true));
        assert!(
            p.get("unit_bytes").unwrap().as_u64().unwrap() > 0,
            "pattern operands must report their arena-backed view bytes"
        );
        assert!(
            p.get("mem_bytes").unwrap().as_u64().unwrap()
                < v.get("mem_bytes").unwrap().as_u64().unwrap(),
            "dropping per-dataset value sections must shrink resident bytes: {} vs {}",
            p.to_line(),
            v.to_line()
        );

        // Structural applications must not notice the missing weights.
        for req in [
            r#"{"op":"app","dataset":"DS","app":"tc"}"#,
            r#"{"op":"app","dataset":"DS","app":"ktruss","k":3}"#,
        ] {
            let rv = ok(&state, &req.replace("DS", "v"));
            let rp = ok(&state, &req.replace("DS", "p"));
            assert_eq!(rv.get("triangles"), rp.get("triangles"), "{req}");
            assert_eq!(rv.get("edges_kept"), rp.get("edges_kept"), "{req}");
        }
        let tc = ok(&state, r#"{"op":"app","dataset":"p","app":"tc"}"#);
        assert_eq!(
            tc.get("triangles").unwrap().as_u64(),
            Some((n - 2) as u64),
            "chained-triangle graph has n-2 triangles"
        );
        // The mxm verb still runs against arena-backed values.
        ok(&state, r#"{"op":"mxm","dataset":"p","algo":"hash"}"#);

        // Disclosure: ping/stats carry the SIMD level, stats carries the
        // per-dataset pattern flags and the once-per-process arena bytes.
        let ping = ok(&state, r#"{"op":"ping"}"#);
        assert!(ping.get("simd").unwrap().as_str().is_some());
        let stats = ok(&state, r#"{"op":"stats"}"#);
        assert_eq!(
            stats.get("simd").unwrap().as_str(),
            Some(masked_spgemm::simd::level().name())
        );
        assert!(stats.get("unit_arena_bytes").unwrap().as_u64().unwrap() > 0);
        let rows = match stats.get("datasets").unwrap() {
            Json::Arr(rows) => rows,
            other => panic!("datasets must be an array, got {}", other.to_line()),
        };
        let by_name = |want: &str| {
            rows.iter()
                .find(|r| r.get("name").unwrap().as_str() == Some(want))
                .unwrap()
        };
        assert_eq!(by_name("v").get("pattern").unwrap().as_bool(), Some(false));
        assert_eq!(by_name("p").get("pattern").unwrap().as_bool(), Some(true));
        publish_gauges(&state);
        let snap = state.metrics.gauge("unit_arena_bytes", &[]).get();
        assert!(snap > 0.0, "unit_arena_bytes gauge must be published");
    }

    #[test]
    fn deadline_expired_before_admission_is_rejected() {
        let (state, path) = state_with("deadline_admission", 60);
        ok(
            &state,
            &format!(r#"{{"op":"load","path":"{path}","name":"g"}}"#),
        );
        // An arrival stamp far in the past: the 1 ms budget is long gone
        // by admission time, deterministically.
        let received = Instant::now()
            .checked_sub(Duration::from_secs(10))
            .expect("monotonic clock is past its first 10 seconds");
        let (resp, stop) = handle_request_at(
            &state,
            r#"{"op":"mxm","dataset":"g","deadline_ms":1}"#,
            received,
        );
        assert!(!stop);
        assert_eq!(
            resp.get("error").unwrap().get("code").unwrap().as_str(),
            Some("deadline_exceeded"),
            "{}",
            resp.to_line()
        );
        assert_eq!(
            state.metrics.counter("deadline_exceeded_total", &[]).get(),
            1
        );
        // Without a budget the same request runs fine.
        ok(&state, r#"{"op":"mxm","dataset":"g","deadline_ms":0}"#);
    }

    #[test]
    fn fused_batch_matches_single_requests_per_mask() {
        let (state, path) = state_with("fusion", 100);
        ok(
            &state,
            &format!(r#"{{"op":"load","path":"{path}","name":"g"}}"#),
        );
        // Reference fingerprints from plain (unfused) requests.
        let normal = ok(&state, r#"{"op":"mxm","dataset":"g","algo":"hash"}"#);
        let comp = ok(
            &state,
            r#"{"op":"mxm","dataset":"g","algo":"hash","mask":"complement"}"#,
        );
        assert_eq!(normal.get("fused").unwrap().as_bool(), Some(false));
        assert_eq!(normal.get("fused_group").unwrap().as_u64(), Some(1));

        // Hand-build a fused batch (two normal riders + one complement)
        // and run it exactly as an executor worker would.
        let mk = |line: &str| {
            let (tx, rx) = mpsc::channel();
            (
                Job {
                    verb: "mxm",
                    req: json::parse(line).unwrap(),
                    fuse_key: Some("k".to_string()),
                    dataset: Some("g".to_string()),
                    received: Instant::now(),
                    deadline: None,
                    reply: tx,
                },
                rx,
            )
        };
        let (j1, r1) = mk(r#"{"op":"mxm","dataset":"g","algo":"hash"}"#);
        let (j2, r2) = mk(r#"{"op":"mxm","dataset":"g","algo":"hash"}"#);
        let (j3, r3) = mk(r#"{"op":"mxm","dataset":"g","algo":"hash","mask":"complement"}"#);
        execute_batch(&state, vec![j1, j2, j3]);
        let a = r1.recv().unwrap();
        let b = r2.recv().unwrap();
        let c = r3.recv().unwrap();
        for resp in [&a, &b] {
            assert_eq!(
                resp.get("ok"),
                Some(&Json::Bool(true)),
                "{}",
                resp.to_line()
            );
            assert_eq!(resp.get("fused").unwrap().as_bool(), Some(true));
            assert_eq!(resp.get("fused_group").unwrap().as_u64(), Some(2));
            assert_eq!(resp.get("mask").unwrap().as_str(), Some("normal"));
            assert_eq!(
                resp.get("fingerprint"),
                normal.get("fingerprint"),
                "fused output must be bit-identical to the unfused one"
            );
        }
        assert_eq!(c.get("fused_group").unwrap().as_u64(), Some(1));
        assert_eq!(c.get("fingerprint"), comp.get("fingerprint"));
        assert_eq!(
            state.metrics.counter("fused_requests_total", &[]).get(),
            1,
            "two riders shared one pass: one kernel execution saved"
        );
    }

    #[test]
    fn stats_reports_the_scheduler_shape() {
        let (state, _) = state_with("sched_stats", 40);
        let stats = ok(&state, r#"{"op":"stats"}"#);
        let sched = stats.get("scheduler").unwrap();
        assert_eq!(sched.get("workers").unwrap().as_u64(), Some(2));
        assert_eq!(sched.get("queue_depth").unwrap().as_u64(), Some(64));
        assert_eq!(sched.get("queued").unwrap().as_u64(), Some(0));
    }

    #[test]
    fn load_and_stats_report_backend_and_mapped_bytes() {
        // Heap-loaded text dataset: backend "heap", zero mapped bytes.
        let (state, path) = state_with("backend_heap", 60);
        let resp = ok(
            &state,
            &format!(r#"{{"op":"load","path":"{path}","name":"g"}}"#),
        );
        assert_eq!(resp.get("backend").unwrap().as_str(), Some("heap"));
        assert_eq!(resp.get("mapped_bytes").unwrap().as_u64(), Some(0));
        let stats = ok(&state, r#"{"op":"stats"}"#);
        let ds = &stats.get("datasets").unwrap().as_arr().unwrap()[0];
        assert_eq!(ds.get("backend").unwrap().as_str(), Some("heap"));
        assert_eq!(stats.get("total_mapped_bytes").unwrap().as_u64(), Some(0));

        // A v2 .msb loaded with "mmap": true comes back mapped (on
        // targets that support zero-copy; elsewhere it stays heap).
        let dir = std::env::temp_dir().join("mspgemm_serve_server_backend_mmap");
        std::fs::create_dir_all(&dir).unwrap();
        let msb = dir.join("m.msb");
        let g = mspgemm_gen::er_symmetric(60, 6, 3);
        let mut buf = Vec::new();
        mspgemm_io::msb::write_msb(&mut buf, &g).unwrap();
        std::fs::write(&msb, &buf).unwrap();
        let resp = ok(
            &state,
            &format!(
                r#"{{"op":"load","path":"{}","name":"m","mmap":true}}"#,
                msb.to_str().unwrap()
            ),
        );
        if cfg!(all(target_endian = "little", target_pointer_width = "64")) {
            assert_eq!(resp.get("backend").unwrap().as_str(), Some("mmap"));
            assert!(resp.get("mapped_bytes").unwrap().as_u64().unwrap() > 0);
            let stats = ok(&state, r#"{"op":"stats"}"#);
            assert!(stats.get("total_mapped_bytes").unwrap().as_u64().unwrap() > 0);
        }
        // Results off a mapped operand agree with the heap-loaded twin.
        let m1 = ok(&state, r#"{"op":"mxm","dataset":"m","algo":"hash"}"#);
        assert!(m1.get("fingerprint").unwrap().as_str().is_some());
        ok(&state, r#"{"op":"unload","name":"m"}"#);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Find the entry with the given name (and label subset) in a
    /// `metrics` response array.
    fn find_series<'a>(arr: &'a Json, name: &str, labels: &[(&str, &str)]) -> Option<&'a Json> {
        arr.as_arr().unwrap().iter().find(|e| {
            e.get("name").unwrap().as_str() == Some(name)
                && labels.iter().all(|(k, v)| {
                    e.get("labels").unwrap().get(k).and_then(Json::as_str) == Some(*v)
                })
        })
    }

    #[test]
    fn ping_reports_version_and_uptime() {
        let (state, _) = state_with("ping_fields", 40);
        let resp = ok(&state, r#"{"op":"ping"}"#);
        assert_eq!(
            resp.get("version").unwrap().as_str(),
            Some(env!("CARGO_PKG_VERSION"))
        );
        assert!(resp.get("uptime_s").unwrap().as_f64().unwrap() >= 0.0);
    }

    #[test]
    fn metrics_verb_counts_requests_and_serves_quantiles() {
        let (state, path) = state_with("metrics", 80);
        ok(&state, r#"{"op":"ping"}"#);
        ok(
            &state,
            &format!(r#"{{"op":"load","path":"{path}","name":"g"}}"#),
        );
        ok(&state, r#"{"op":"mxm","dataset":"g","algo":"hash"}"#);
        ok(&state, r#"{"op":"mxm","dataset":"g","algo":"hash"}"#);
        assert_eq!(err_code(&state, "not json"), "bad_request");

        // 5 requests so far; the metrics request records *after* its own
        // snapshot, so it reports exactly what was issued before it.
        let m = ok(&state, r#"{"op":"metrics"}"#);
        let counters = m.get("counters").unwrap();
        let total = find_series(counters, "requests_total", &[]).unwrap();
        assert_eq!(total.get("value").unwrap().as_u64(), Some(5));
        let mxm = find_series(counters, "requests_total", &[("verb", "mxm")]).unwrap();
        assert_eq!(mxm.get("value").unwrap().as_u64(), Some(2));
        let errors = find_series(counters, "errors_total", &[]).unwrap();
        assert_eq!(errors.get("value").unwrap().as_u64(), Some(1));
        let ingest = find_series(counters, "ingest_bytes_total", &[]).unwrap();
        assert!(ingest.get("value").unwrap().as_u64().unwrap() > 0);

        let hists = m.get("histograms").unwrap();
        let lat = find_series(hists, "request_latency_us", &[("verb", "mxm")]).unwrap();
        assert_eq!(lat.get("count").unwrap().as_u64(), Some(2));
        let p50 = lat.get("p50").unwrap().as_u64().unwrap();
        let p99 = lat.get("p99").unwrap().as_u64().unwrap();
        assert!(p50 <= p99, "quantiles must be monotone");
        assert!(
            find_series(hists, "queue_wait_us", &[("verb", "mxm")]).is_some(),
            "queue-wait series exists per verb"
        );
        assert!(
            find_series(hists, "dataset_request_latency_us", &[("dataset", "g")]).is_some(),
            "per-dataset latency series exists"
        );

        // Gauges mirror the pool and residency at snapshot time.
        let gauges = m.get("gauges").unwrap();
        let resident = find_series(gauges, "datasets_resident", &[]).unwrap();
        assert_eq!(resident.get("value").unwrap().as_f64(), Some(1.0));

        // Prometheus exposition of the same registry.
        let prom = ok(&state, r#"{"op":"metrics","format":"prometheus"}"#);
        let text = prom.get("text").unwrap().as_str().unwrap();
        assert!(text.contains("# TYPE requests_total counter"));
        assert!(
            text.contains("requests_total 6"),
            "json metrics request counted: {text}"
        );
        assert!(text.contains("request_latency_us_bucket"));
        assert!(text.contains("# TYPE ws_pool_hits gauge"));

        assert_eq!(
            err_code(&state, r#"{"op":"metrics","format":"xml"}"#),
            "bad_request"
        );
    }

    #[test]
    fn stats_reports_totals_and_latency_quantiles() {
        let (state, path) = state_with("stats_latency", 70);
        ok(
            &state,
            &format!(r#"{{"op":"load","path":"{path}","name":"g"}}"#),
        );
        ok(&state, r#"{"op":"mxm","dataset":"g","algo":"msa"}"#);
        err_code(&state, r#"{"op":"mxm","dataset":"nope"}"#);
        let stats = ok(&state, r#"{"op":"stats"}"#);
        assert_eq!(stats.get("requests_total").unwrap().as_u64(), Some(3));
        assert_eq!(stats.get("errors_total").unwrap().as_u64(), Some(1));
        let lat = stats.get("latency").unwrap();
        assert_eq!(lat.get("count").unwrap().as_u64(), Some(3));
        let p50 = lat.get("p50").unwrap().as_f64().unwrap();
        let p99 = lat.get("p99").unwrap().as_f64().unwrap();
        assert!(p50 >= 0.0 && p50 <= p99, "seconds, monotone: {p50} {p99}");
    }

    #[test]
    fn memory_budget_evicts_lru_and_answers_typed_errors() {
        // Probe the per-dataset footprint with an unlimited server.
        let (probe, path) = state_with("budget_probe", 120);
        let resp = ok(
            &probe,
            &format!(r#"{{"op":"load","path":"{path}","name":"p"}}"#),
        );
        let one = resp.get("mem_bytes").unwrap().as_u64().unwrap();
        assert_eq!(resp.get("pinned").unwrap().as_bool(), Some(false));
        assert_eq!(resp.get("evicted").unwrap().as_arr().unwrap().len(), 0);
        drop(probe);

        // A budget that fits two of these datasets but not three.
        let state = ServerState::new(ServeConfig {
            cache: CachePolicy::Off,
            max_resident_bytes: 2 * one + one / 2,
            ..ServeConfig::default()
        });
        for name in ["a", "b"] {
            ok(
                &state,
                &format!(r#"{{"op":"load","path":"{path}","name":"{name}"}}"#),
            );
        }
        // Touch "a" so "b" is the least-recently-used victim.
        ok(&state, r#"{"op":"mxm","dataset":"a","algo":"hash"}"#);
        let resp = ok(
            &state,
            &format!(r#"{{"op":"load","path":"{path}","name":"c"}}"#),
        );
        let evicted = resp.get("evicted").unwrap().as_arr().unwrap();
        assert_eq!(evicted.len(), 1, "{}", resp.to_line());
        assert_eq!(evicted[0].as_str(), Some("b"));
        assert_eq!(state.metrics.counter("evictions_total", &[]).get(), 1);
        // The evicted dataset answers its typed error, not
        // unknown_dataset; the survivors still serve.
        assert_eq!(err_code(&state, r#"{"op":"mxm","dataset":"b"}"#), "evicted");
        ok(&state, r#"{"op":"mxm","dataset":"a","algo":"hash"}"#);
        // The gauge stays under budget after a scrape refresh.
        publish_gauges(&state);
        let resident = state.metrics.gauge("resident_bytes", &[]).get();
        assert!(resident <= (2 * one + one / 2) as f64, "{resident}");

        // A budget nothing fits: typed over_budget, nothing loaded.
        let tiny = ServerState::new(ServeConfig {
            cache: CachePolicy::Off,
            max_resident_bytes: one / 2,
            ..ServeConfig::default()
        });
        assert_eq!(
            err_code(
                &tiny,
                &format!(r#"{{"op":"load","path":"{path}","name":"x"}}"#)
            ),
            "over_budget"
        );
        assert!(tiny.registry.is_empty());

        // Pinned datasets are never evicted: a pinned load filling the
        // budget forces over_budget on the next one.
        let pinned = ServerState::new(ServeConfig {
            cache: CachePolicy::Off,
            max_resident_bytes: one + one / 2,
            ..ServeConfig::default()
        });
        let resp = ok(
            &pinned,
            &format!(r#"{{"op":"load","path":"{path}","name":"keep","pin":true}}"#),
        );
        assert_eq!(resp.get("pinned").unwrap().as_bool(), Some(true));
        assert_eq!(
            err_code(
                &pinned,
                &format!(r#"{{"op":"load","path":"{path}","name":"y"}}"#)
            ),
            "over_budget"
        );
        ok(&pinned, r#"{"op":"mxm","dataset":"keep","algo":"hash"}"#);
    }

    #[test]
    fn quarantine_flows_through_the_protocol() {
        let (state, path) = state_with("quarantine", 100);
        ok(
            &state,
            &format!(r#"{{"op":"load","path":"{path}","name":"g"}}"#),
        );
        // Two attributed panics: below the default threshold of 3.
        state.registry.note_panic("g");
        state.registry.note_panic("g");
        ok(&state, r#"{"op":"mxm","dataset":"g","algo":"hash"}"#);
        // The third flips quarantine; requests get the typed error.
        assert!(state.registry.note_panic("g").newly_quarantined);
        assert_eq!(
            err_code(&state, r#"{"op":"mxm","dataset":"g"}"#),
            "quarantined"
        );
        let list = ok(&state, r#"{"op":"list"}"#);
        let entry = &list.get("datasets").unwrap().as_arr().unwrap()[0];
        assert_eq!(entry.get("quarantined").unwrap().as_bool(), Some(true));
        assert_eq!(entry.get("panics").unwrap().as_u64(), Some(3));
        // unload + load is the operator's reset lever.
        ok(&state, r#"{"op":"unload","name":"g"}"#);
        ok(
            &state,
            &format!(r#"{{"op":"load","path":"{path}","name":"g"}}"#),
        );
        ok(&state, r#"{"op":"mxm","dataset":"g","algo":"hash"}"#);
    }

    #[test]
    fn stats_reports_failpoints_and_budget() {
        let (state, _) = state_with("stats_fail", 40);
        let stats = ok(&state, r#"{"op":"stats"}"#);
        // No failpoints armed in lib tests (the chaos suite owns the
        // global table); the field must still exist, empty.
        assert_eq!(
            stats.get("failpoints").unwrap().as_arr().unwrap().len(),
            0,
            "{}",
            stats.to_line()
        );
        assert_eq!(stats.get("max_resident_bytes").unwrap().as_u64(), Some(0));
    }

    #[test]
    fn oversized_line_drain_is_bounded() {
        let (state, _) = state_with("drain_cap", 40);
        // A line far past the drain cap, no newline anywhere: the
        // connection must answer payload_too_large and close without
        // consuming the stream forever.
        let big = vec![b'x'; DRAIN_CAP_BYTES + MAX_REQUEST_BYTES];
        let mut out = Vec::new();
        serve_connection(&state, BufReader::new(&big[..]), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("payload_too_large"), "{text}");
        assert_eq!(text.lines().count(), 1, "one response, then close");
    }

    #[test]
    fn stats_and_shutdown_flow() {
        let (state, path) = state_with("stats", 80);
        ok(
            &state,
            &format!(r#"{{"op":"load","path":"{path}","name":"g"}}"#),
        );
        ok(&state, r#"{"op":"mxm","dataset":"g","algo":"msa"}"#);
        let stats = ok(&state, r#"{"op":"stats"}"#);
        assert!(stats.get("requests").unwrap().as_u64().unwrap() >= 2);
        assert!(stats.get("total_mem_bytes").unwrap().as_u64().unwrap() > 0);
        assert!(stats.get("pool").unwrap().get("hit_rate").is_some());

        let (resp, stop) = handle_request(&state, r#"{"op":"shutdown"}"#);
        assert!(stop);
        assert_eq!(resp.get("stopping").unwrap().as_bool(), Some(true));
        state.begin_shutdown();
        let (resp, stop) = handle_request(&state, r#"{"op":"ping"}"#);
        assert!(!stop);
        assert_eq!(
            resp.get("error").unwrap().get("code").unwrap().as_str(),
            Some("shutting_down")
        );
    }
}
