//! The server: listener setup, per-connection threads, and the request
//! handlers that execute protocol verbs against the shared state.
//!
//! One [`ServerState`] is shared by every connection: the dataset
//! [`Registry`] behind its `RwLock`, one [`WsPool`] so accumulator
//! scratch is reused across *all* requests (the second query against a
//! warm dataset allocates nothing), and one [`ExecStats`] recorder
//! feeding the `stats` verb's busy-spread figure. Parallel kernels run on
//! the process-wide persistent worker pool (the rayon layer), so steady
//! state spawns no threads either.
//!
//! The accept loop runs on its own thread; each accepted connection gets
//! a handler thread that loops over request lines until EOF, an oversized
//! payload, or `shutdown`. Shutdown is cooperative: the flag flips, the
//! accept loop is woken by a self-connection, and in-flight requests
//! finish their response before the process exits.

use crate::json::{self, Json};
use crate::protocol::{
    err_response, ok_response, opt_bool, opt_str, opt_u64, read_frame, req_str, ErrorCode, Frame,
    MAX_REQUEST_BYTES,
};
use crate::registry::{Registry, RegistryError};
use masked_spgemm::{
    masked_mxm_with_bt, masked_mxm_with_opts, Algorithm, ExecOpts, ExecStats, MaskMode, Phases,
    RowSchedule, WsPool,
};
use mspgemm_graph::{bc, ktruss, tricount, App, Scheme};
use mspgemm_harness::{busy_spread, csr_fingerprint, gflops, mb_per_s, time_best, with_threads};
use mspgemm_io::{CachePolicy, LoadOpts};
use mspgemm_obs::{HistSnapshot, MetricsRegistry, Series};
use mspgemm_sparse::semiring::PlusTimesF64;
use mspgemm_sparse::Csr;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Server-wide defaults a request can override per call.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Row schedule used when a request does not name one.
    pub schedule: RowSchedule,
    /// Parse fan-out for `load` when the request does not pin one
    /// (`0` = all cores).
    pub parse_threads: usize,
    /// Sidecar cache policy for `load` (default: read/write, so the
    /// first text load warms the `.msb` sidecar).
    pub cache: CachePolicy,
    /// Prefer zero-copy mmap residency for v2 `.msb` inputs/sidecars
    /// (`mxm serve --mmap`); requests can override per `load`.
    pub mmap: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            schedule: RowSchedule::default(),
            parse_threads: 0,
            cache: CachePolicy::ReadWrite,
            mmap: false,
        }
    }
}

/// Everything the request handlers share across connections.
pub struct ServerState {
    /// The resident datasets.
    pub registry: Registry,
    /// Cross-request accumulator cache: the reason a warm query
    /// allocates nothing.
    pub ws_pool: WsPool,
    /// Cumulative per-thread busy-time recorder behind the `stats`
    /// verb's load-balance figure.
    pub exec_stats: ExecStats,
    /// Named metric series — request counters, per-verb and per-dataset
    /// latency and queue-wait histograms, ingest totals — served by the
    /// `metrics` verb as JSON or Prometheus text.
    pub metrics: MetricsRegistry,
    config: ServeConfig,
    started: Instant,
    requests: AtomicU64,
    /// Requests currently between line-read and response-flush; shutdown
    /// drains this to zero before the process exits.
    active: AtomicU64,
    shutting_down: AtomicBool,
    /// The resolved listen address, for the shutdown self-connection.
    addr: OnceLock<String>,
}

impl ServerState {
    fn new(config: ServeConfig) -> Self {
        ServerState {
            registry: Registry::new(),
            ws_pool: WsPool::new(),
            exec_stats: ExecStats::new(),
            metrics: MetricsRegistry::new(),
            config,
            started: Instant::now(),
            requests: AtomicU64::new(0),
            active: AtomicU64::new(0),
            shutting_down: AtomicBool::new(false),
            addr: OnceLock::new(),
        }
    }

    /// Whether shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shutting_down.load(Ordering::SeqCst)
    }

    fn begin_shutdown(&self) {
        self.shutting_down.store(true, Ordering::SeqCst);
    }

    /// Requests handled so far (including ones answered with an error).
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }
}

/// One running server: accept-loop thread plus shared state. Dropping the
/// handle shuts the server down (tests rely on this); the CLI instead
/// parks on [`Server::wait`] until a `shutdown` request arrives.
pub struct Server {
    state: Arc<ServerState>,
    accept: Option<std::thread::JoinHandle<()>>,
}

enum Binding {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener, std::path::PathBuf),
}

impl Server {
    /// Bind `listen` and start accepting. `listen` is either a TCP
    /// address (`127.0.0.1:7654`, port `0` picks a free one) or
    /// `unix:/path/to.sock`.
    pub fn start(listen: &str, config: ServeConfig) -> Result<Server, String> {
        let state = Arc::new(ServerState::new(config));
        let (binding, addr) = if let Some(path) = listen.strip_prefix("unix:") {
            #[cfg(unix)]
            {
                let l = UnixListener::bind(path).map_err(|e| format!("bind {listen}: {e}"))?;
                (Binding::Unix(l, path.into()), listen.to_string())
            }
            #[cfg(not(unix))]
            {
                return Err(format!(
                    "bind {listen}: unix sockets are not supported on this platform"
                ));
            }
        } else {
            let l = TcpListener::bind(listen).map_err(|e| format!("bind {listen}: {e}"))?;
            let local = l.local_addr().map_err(|e| e.to_string())?;
            (Binding::Tcp(l), local.to_string())
        };
        state.addr.set(addr).unwrap();
        let st = state.clone();
        let accept = std::thread::Builder::new()
            .name("mxm-serve-accept".into())
            .spawn(move || accept_loop(st, binding))
            .map_err(|e| e.to_string())?;
        Ok(Server {
            state,
            accept: Some(accept),
        })
    }

    /// The resolved listen address (`host:port`, or `unix:/path`).
    pub fn addr(&self) -> &str {
        self.state.addr.get().expect("set at start")
    }

    /// The shared state (registries, pools) — for preloading and tests.
    pub fn state(&self) -> &Arc<ServerState> {
        &self.state
    }

    /// Load datasets into the registry before (or while) serving, using
    /// the server's default cache policy and parse fan-out. Returns the
    /// registry names in input order.
    pub fn preload(&self, paths: &[String]) -> Result<Vec<String>, String> {
        paths
            .iter()
            .map(|p| {
                self.state
                    .registry
                    .load(
                        p,
                        None,
                        &LoadOpts {
                            policy: self.state.config.cache,
                            parse_threads: self.state.config.parse_threads,
                            mmap: self.state.config.mmap,
                        },
                    )
                    .map(|ds| ds.name.clone())
                    .map_err(|e| e.to_string())
            })
            .collect()
    }

    /// Request shutdown, join the accept thread, and drain in-flight
    /// requests. Idempotent.
    pub fn shutdown(&mut self) {
        self.state.begin_shutdown();
        if let Some(addr) = self.state.addr.get() {
            wake(addr);
        }
        if let Some(h) = self.accept.take() {
            h.join().ok();
        }
        drain_in_flight(&self.state);
    }

    /// Block until a `shutdown` request stops the server, then until
    /// every in-flight request has flushed its response.
    pub fn wait(mut self) {
        if let Some(h) = self.accept.take() {
            h.join().ok();
        }
        drain_in_flight(&self.state);
    }
}

/// Connection handler threads are detached (an idle connection parked on
/// a read would block a join forever), so shutdown instead waits for the
/// *requests* currently executing — kernels always terminate — and lets
/// idle connections die with the process, their responses long since
/// flushed.
fn drain_in_flight(state: &ServerState) {
    while state.active.load(Ordering::SeqCst) > 0 {
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Poke the listener so a blocked `accept` observes the shutdown flag.
fn wake(addr: &str) {
    if let Some(_path) = addr.strip_prefix("unix:") {
        #[cfg(unix)]
        {
            let _ = UnixStream::connect(_path);
        }
    } else {
        let _ = TcpStream::connect(addr);
    }
}

fn accept_loop(state: Arc<ServerState>, binding: Binding) {
    match binding {
        Binding::Tcp(listener) => loop {
            let conn = listener.accept();
            if state.is_shutting_down() {
                break;
            }
            match conn {
                Ok((stream, _)) => {
                    let st = state.clone();
                    std::thread::spawn(move || {
                        let reader = match stream.try_clone() {
                            Ok(r) => BufReader::new(r),
                            Err(_) => return,
                        };
                        let _ = serve_connection(&st, reader, stream);
                    });
                }
                // Transient errors (EMFILE under fd exhaustion, ECONNABORTED)
                // return immediately; back off instead of spinning a core.
                Err(_) => std::thread::sleep(std::time::Duration::from_millis(10)),
            }
        },
        #[cfg(unix)]
        Binding::Unix(listener, path) => {
            loop {
                let conn = listener.accept();
                if state.is_shutting_down() {
                    break;
                }
                match conn {
                    Ok((stream, _)) => {
                        let st = state.clone();
                        std::thread::spawn(move || {
                            let reader = match stream.try_clone() {
                                Ok(r) => BufReader::new(r),
                                Err(_) => return,
                            };
                            let _ = serve_connection(&st, reader, stream);
                        });
                    }
                    Err(_) => std::thread::sleep(std::time::Duration::from_millis(10)),
                }
            }
            std::fs::remove_file(&path).ok();
        }
    }
}

/// Drive one connection: read request lines, write response lines, until
/// EOF, an oversized payload, or shutdown.
pub fn serve_connection(
    state: &Arc<ServerState>,
    mut reader: impl BufRead,
    mut writer: impl Write,
) -> std::io::Result<()> {
    loop {
        match read_frame(&mut reader, MAX_REQUEST_BYTES)? {
            Frame::Eof => return Ok(()),
            Frame::Oversized => {
                let resp = err_response(
                    ErrorCode::PayloadTooLarge,
                    format!("request line exceeds {MAX_REQUEST_BYTES} bytes"),
                );
                writeln!(writer, "{}", resp.to_line())?;
                writer.flush()?;
                // Swallow the rest of the oversized line (constant
                // memory) before closing: dropping the socket with
                // unread bytes queued would RST the connection and race
                // the error response out of the peer's receive buffer.
                drain_line(&mut reader).ok();
                return Ok(());
            }
            Frame::Line(line) => {
                if line.trim().is_empty() {
                    continue;
                }
                let received = Instant::now();
                // In-flight guard spans compute *and* response flush, so
                // shutdown's drain never cuts a response mid-write.
                let guard = ActiveGuard::new(&state.active);
                let (resp, stop) = handle_request_at(state, &line, received);
                writeln!(writer, "{}", resp.to_line())?;
                writer.flush()?;
                drop(guard);
                if stop {
                    state.begin_shutdown();
                    if let Some(addr) = state.addr.get() {
                        wake(addr);
                    }
                    return Ok(());
                }
            }
        }
    }
}

/// RAII increment of the in-flight request counter; decrements on drop
/// (including the early-return paths when a response write fails).
struct ActiveGuard<'a>(&'a AtomicU64);

impl Drop for ActiveGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

impl<'a> ActiveGuard<'a> {
    fn new(counter: &'a AtomicU64) -> Self {
        counter.fetch_add(1, Ordering::SeqCst);
        ActiveGuard(counter)
    }
}

/// Discard input up to and including the next newline (or EOF), in
/// constant memory.
fn drain_line(reader: &mut impl BufRead) -> std::io::Result<()> {
    loop {
        let buf = reader.fill_buf()?;
        if buf.is_empty() {
            return Ok(());
        }
        match buf.iter().position(|&b| b == b'\n') {
            Some(i) => {
                reader.consume(i + 1);
                return Ok(());
            }
            None => {
                let n = buf.len();
                reader.consume(n);
            }
        }
    }
}

type OpResult = Result<Json, (ErrorCode, String)>;

fn bad(msg: String) -> (ErrorCode, String) {
    (ErrorCode::BadRequest, msg)
}

fn reg_err(e: RegistryError) -> (ErrorCode, String) {
    let code = match &e {
        RegistryError::AlreadyLoaded(_) => ErrorCode::AlreadyLoaded,
        RegistryError::NotFound(_) => ErrorCode::UnknownDataset,
        RegistryError::Load(_) => ErrorCode::LoadFailed,
    };
    (code, e.to_string())
}

/// Parse an optional field into any `FromStr` type, accepting both the
/// string spelling and (for convenience) an integral number — so
/// `"phases": 2` and `"phases": "2"` both work.
fn opt_parse<T: std::str::FromStr<Err = String>>(
    req: &Json,
    field: &str,
    default: &str,
) -> Result<T, (ErrorCode, String)> {
    let spelled = match req.get(field) {
        None | Some(Json::Null) => default.to_string(),
        Some(Json::Str(s)) => s.clone(),
        Some(v @ Json::Num(_)) => match v.as_u64() {
            Some(n) => n.to_string(),
            None => return Err(bad(format!("'{field}' must be a string or integer"))),
        },
        Some(_) => return Err(bad(format!("'{field}' must be a string or integer"))),
    };
    spelled.parse().map_err(|e| bad(format!("'{field}': {e}")))
}

fn mask_name(mode: MaskMode) -> &'static str {
    match mode {
        MaskMode::Mask => "normal",
        MaskMode::Complement => "complement",
    }
}

/// Dispatch one request line. Returns the response and whether the server
/// should stop accepting (the `shutdown` verb).
pub fn handle_request(state: &ServerState, line: &str) -> (Json, bool) {
    handle_request_at(state, line, Instant::now())
}

/// [`handle_request`] with an explicit arrival timestamp, so the
/// connection loop can charge pre-dispatch delay to the `queue_wait_us`
/// histogram. Today requests execute synchronously on their connection
/// thread and the wait is near zero; the series exists so the ROADMAP's
/// admission-control work inherits the plumbing (and the metric name)
/// for free.
fn handle_request_at(state: &ServerState, line: &str, received: Instant) -> (Json, bool) {
    let exec_start = Instant::now();
    let (verb, dataset, resp, stop) = dispatch_request(state, line);
    let latency_us = exec_start.elapsed().as_micros() as u64;
    let queue_us = exec_start.saturating_duration_since(received).as_micros() as u64;
    let m = &state.metrics;
    m.counter("requests_total", &[]).inc();
    m.counter("requests_total", &[("verb", verb)]).inc();
    if resp.get("ok") != Some(&Json::Bool(true)) {
        m.counter("errors_total", &[]).inc();
        m.counter("errors_total", &[("verb", verb)]).inc();
    }
    m.histogram("request_latency_us", &[]).record(latency_us);
    m.histogram("request_latency_us", &[("verb", verb)])
        .record(latency_us);
    m.histogram("queue_wait_us", &[("verb", verb)])
        .record(queue_us);
    if let Some(ds) = dataset {
        m.histogram("dataset_request_latency_us", &[("dataset", &ds)])
            .record(latency_us);
    }
    (resp, stop)
}

/// The verb switch proper. Returns the verb label and the dataset the
/// request addressed (for the per-series histograms) alongside the
/// response.
fn dispatch_request(state: &ServerState, line: &str) -> (&'static str, Option<String>, Json, bool) {
    let (verb, dataset, result, stop) = dispatch_request_inner(state, line);
    match result {
        Ok(resp) => (verb, dataset, resp, stop),
        Err((code, msg)) => (verb, dataset, err_response(code, msg), stop),
    }
}

fn dispatch_request_inner(
    state: &ServerState,
    line: &str,
) -> (&'static str, Option<String>, OpResult, bool) {
    if state.is_shutting_down() {
        return (
            "rejected",
            None,
            Err((
                ErrorCode::ShuttingDown,
                "server is shutting down".to_string(),
            )),
            false,
        );
    }
    let req = match json::parse(line) {
        Ok(v @ Json::Obj(_)) => v,
        Ok(_) => {
            return (
                "invalid",
                None,
                Err((
                    ErrorCode::BadRequest,
                    "request must be a JSON object".to_string(),
                )),
                false,
            )
        }
        Err(e) => {
            return (
                "invalid",
                None,
                Err((ErrorCode::BadRequest, format!("invalid JSON: {e}"))),
                false,
            )
        }
    };
    state.requests.fetch_add(1, Ordering::Relaxed);
    let op = match req.get("op").and_then(Json::as_str) {
        Some(s) => s.to_string(),
        None => {
            return (
                "invalid",
                None,
                Err((ErrorCode::BadRequest, "'op' must be a string".to_string())),
                false,
            )
        }
    };
    // The dataset label for per-dataset latency series: `mxm`/`app`
    // address one via "dataset"; `load`/`unload` via "name".
    let dataset = req
        .get("dataset")
        .or_else(|| req.get("name"))
        .and_then(Json::as_str)
        .map(str::to_string);
    if op == "shutdown" {
        return (
            "shutdown",
            dataset,
            Ok(ok_response(vec![
                ("op", Json::str("shutdown")),
                ("stopping", true.into()),
            ])),
            true,
        );
    }
    let (verb, result): (&'static str, OpResult) = match op.as_str() {
        "ping" => ("ping", op_ping(state)),
        "load" => ("load", op_load(state, &req)),
        "list" => ("list", op_list(state)),
        "unload" => ("unload", op_unload(state, &req)),
        "mxm" => ("mxm", op_mxm(state, &req)),
        "app" => ("app", op_app(state, &req)),
        "stats" => ("stats", op_stats(state)),
        "metrics" => ("metrics", op_metrics(state, &req)),
        other => (
            "unknown",
            Err((
                ErrorCode::UnknownOp,
                format!(
                "unknown op '{other}' (expected ping|load|list|unload|mxm|app|stats|metrics|shutdown)"
            ),
            )),
        ),
    };
    (verb, dataset, result, false)
}

fn op_ping(state: &ServerState) -> OpResult {
    Ok(ok_response(vec![
        ("op", Json::str("ping")),
        ("pong", true.into()),
        ("version", Json::str(env!("CARGO_PKG_VERSION"))),
        ("uptime_s", state.started.elapsed().as_secs_f64().into()),
        ("datasets", state.registry.len().into()),
    ]))
}

fn op_load(state: &ServerState, req: &Json) -> OpResult {
    let path = req_str(req, "path").map_err(bad)?;
    let name = opt_str(req, "name").map_err(bad)?;
    let parse_threads =
        opt_u64(req, "parse_threads", state.config.parse_threads as u64).map_err(bad)? as usize;
    let cache = match opt_str(req, "cache").map_err(bad)? {
        None => state.config.cache,
        Some("readwrite") => CachePolicy::ReadWrite,
        Some("readonly") => CachePolicy::ReadOnly,
        Some("off") => CachePolicy::Off,
        Some(other) => {
            return Err(bad(format!(
                "'cache' must be readwrite|readonly|off, got '{other}'"
            )))
        }
    };
    let mmap = opt_bool(req, "mmap", state.config.mmap).map_err(bad)?;
    let ds = state
        .registry
        .load(
            path,
            name,
            &LoadOpts {
                policy: cache,
                parse_threads,
                mmap,
            },
        )
        .map_err(reg_err)?;
    let r = &ds.ingest;
    // Absorb the IngestReport into the metrics registry: cumulative
    // totals plus an ingest-latency histogram alongside the request one.
    let m = &state.metrics;
    m.counter("ingest_bytes_total", &[]).add(r.bytes);
    m.counter("ingest_entries_total", &[]).add(r.entries as u64);
    m.histogram("ingest_latency_us", &[])
        .record((r.seconds * 1e6) as u64);
    Ok(ok_response(vec![
        ("op", Json::str("load")),
        ("name", Json::str(&ds.name)),
        ("path", Json::str(&ds.path)),
        ("nrows", ds.matrix.nrows().into()),
        ("ncols", ds.matrix.ncols().into()),
        ("nnz", ds.matrix.nnz().into()),
        ("adj_nnz", ds.adj.nnz().into()),
        ("mem_bytes", ds.mem_bytes().into()),
        ("backend", Json::str(ds.backend().name())),
        ("mapped_bytes", ds.mapped_bytes().into()),
        (
            "ingest",
            Json::obj(vec![
                ("outcome", Json::Str(format!("{:?}", r.outcome))),
                ("bytes", r.bytes.into()),
                ("entries", r.entries.into()),
                ("seconds", r.seconds.into()),
                ("mb_per_s", mb_per_s(r.bytes, r.seconds).into()),
            ]),
        ),
    ]))
}

fn op_list(state: &ServerState) -> OpResult {
    let datasets: Vec<Json> = state
        .registry
        .list()
        .iter()
        .map(|ds| {
            Json::obj(vec![
                ("name", Json::str(&ds.name)),
                ("path", Json::str(&ds.path)),
                ("nrows", ds.matrix.nrows().into()),
                ("nnz", ds.matrix.nnz().into()),
                ("adj_nnz", ds.adj.nnz().into()),
                ("mem_bytes", ds.mem_bytes().into()),
                ("backend", Json::str(ds.backend().name())),
                ("mapped_bytes", ds.mapped_bytes().into()),
                ("age_seconds", ds.loaded_at.elapsed().as_secs_f64().into()),
            ])
        })
        .collect();
    Ok(ok_response(vec![
        ("op", Json::str("list")),
        ("count", datasets.len().into()),
        ("datasets", Json::Arr(datasets)),
    ]))
}

fn op_unload(state: &ServerState, req: &Json) -> OpResult {
    let name = req_str(req, "name").map_err(bad)?;
    state.registry.unload(name).map_err(reg_err)?;
    Ok(ok_response(vec![
        ("op", Json::str("unload")),
        ("name", Json::str(name)),
    ]))
}

fn op_mxm(state: &ServerState, req: &Json) -> OpResult {
    let name = req_str(req, "dataset").map_err(bad)?;
    let ds = state.registry.get(name).map_err(reg_err)?;
    let algo: Algorithm = opt_parse(req, "algo", "auto")?;
    let mode: MaskMode = opt_parse(req, "mask", "normal")?;
    let phases: Phases = opt_parse(req, "phases", "1")?;
    let schedule: RowSchedule = opt_parse(req, "schedule", state.config.schedule.name())?;
    let threads = opt_u64(req, "threads", 0).map_err(bad)? as usize;
    let reps = opt_u64(req, "reps", 1).map_err(bad)?.max(1) as usize;

    let a = &ds.matrix;
    let mask = &ds.mask;
    let opts = ExecOpts {
        schedule,
        ws_pool: Some(&state.ws_pool),
        stats: Some(&state.exec_stats),
    };
    let hits0 = state.ws_pool.hits();
    let misses0 = state.ws_pool.misses();
    let run_one = || -> Result<Csr<f64>, masked_spgemm::Error> {
        if algo == Algorithm::Inner {
            // The registry's pre-transposed operand: the pull scheme
            // skips the per-call transpose entirely.
            masked_mxm_with_bt::<PlusTimesF64, ()>(mask, a, &ds.matrix_t, mode, phases)
        } else {
            masked_mxm_with_opts::<PlusTimesF64, ()>(mask, a, a, algo, mode, phases, &opts)
        }
    };
    let work = || time_best(reps, run_one);
    let (secs, c) = if threads > 0 {
        with_threads(threads, work)
    } else {
        work()
    };
    let c = c.map_err(|e| (ErrorCode::ExecFailed, e.to_string()))?;
    let hits = state.ws_pool.hits() - hits0;
    let misses = state.ws_pool.misses() - misses0;
    // The explicit pull path has no row drive and leases no workspaces;
    // echoing a schedule or claiming a warm pool would be fiction.
    let is_pull = algo == Algorithm::Inner;
    Ok(ok_response(vec![
        ("op", Json::str("mxm")),
        ("dataset", Json::str(&ds.name)),
        ("algo", Json::str(algo.name())),
        ("mask", Json::str(mask_name(mode))),
        (
            "phases",
            Json::str(if phases == Phases::One { "1" } else { "2" }),
        ),
        (
            "schedule",
            if is_pull {
                Json::Null
            } else {
                Json::str(schedule.name())
            },
        ),
        ("threads", threads.into()),
        ("reps", reps.into()),
        ("seconds", secs.into()),
        ("gflops", gflops(ds.mxm_flops, secs).into()),
        ("nnz", c.nnz().into()),
        (
            "fingerprint",
            Json::Str(format!("{:016x}", csr_fingerprint(&c))),
        ),
        (
            "pool",
            if is_pull {
                Json::Null
            } else {
                Json::obj(vec![
                    ("hits", hits.into()),
                    ("misses", misses.into()),
                    ("warm", (misses == 0).into()),
                ])
            },
        ),
    ]))
}

fn op_app(state: &ServerState, req: &Json) -> OpResult {
    let name = req_str(req, "dataset").map_err(bad)?;
    let ds = state.registry.get(name).map_err(reg_err)?;
    let app: App = opt_parse(req, "app", "tc")?;
    let scheme: Scheme = opt_parse(req, "scheme", "auto")?;
    let schedule: RowSchedule = opt_parse(req, "schedule", state.config.schedule.name())?;
    let threads = opt_u64(req, "threads", 0).map_err(bad)? as usize;
    let k = opt_u64(req, "k", 4).map_err(bad)? as usize;
    let batch = opt_u64(req, "batch", 16).map_err(bad)? as usize;
    if app == App::Ktruss && k < 3 {
        return Err(bad(format!("k-truss needs k >= 3, got {k}")));
    }
    if app == App::Bc && !scheme.supports_complement() {
        return Err((
            ErrorCode::ExecFailed,
            format!(
                "scheme {} cannot run BC (no complemented-mask support)",
                scheme.name()
            ),
        ));
    }
    let opts = ExecOpts {
        schedule,
        ws_pool: Some(&state.ws_pool),
        stats: Some(&state.exec_stats),
    };
    let hits0 = state.ws_pool.hits();
    let misses0 = state.ws_pool.misses();
    // The application layer asserts/expects on kernel errors rather than
    // returning them; a panic must become a protocol error, not a dead
    // connection with no response.
    let run = || -> Result<Vec<(&'static str, Json)>, String> {
        match app {
            App::Tc => {
                let ops = ds.tc_operands();
                let r = catch_unwind(AssertUnwindSafe(|| {
                    tricount::count_prepared_with(&ops, scheme, &opts)
                }))
                .map_err(panic_msg)?;
                Ok(vec![
                    ("triangles", r.triangles.into()),
                    ("mxm_seconds", r.mxm_seconds.into()),
                    ("gflops", gflops(r.flops, r.mxm_seconds).into()),
                ])
            }
            App::Ktruss => {
                let r = catch_unwind(AssertUnwindSafe(|| {
                    ktruss::k_truss_with(&ds.adj, k, scheme, &opts)
                }))
                .map_err(panic_msg)?;
                Ok(vec![
                    ("k", k.into()),
                    ("iterations", r.iterations.into()),
                    ("edges", r.truss.nnz().into()),
                    ("mxm_seconds", r.mxm_seconds.into()),
                ])
            }
            App::Bc => {
                let n = ds.adj.nrows();
                let sources: Vec<usize> = (0..batch.min(n)).collect();
                let nsrc = sources.len();
                let r = catch_unwind(AssertUnwindSafe(|| {
                    bc::betweenness_with(&ds.adj, &sources, scheme, &opts)
                }))
                .map_err(panic_msg)?;
                Ok(vec![
                    ("batch", nsrc.into()),
                    ("depth", r.depth.into()),
                    ("mxm_seconds", r.mxm_seconds.into()),
                    ("total_seconds", r.total_seconds.into()),
                    ("scores_sum", r.scores.iter().sum::<f64>().into()),
                ])
            }
        }
    };
    let fields = if threads > 0 {
        with_threads(threads, run)
    } else {
        run()
    }
    .map_err(|msg| (ErrorCode::ExecFailed, msg))?;
    let hits = state.ws_pool.hits() - hits0;
    let misses = state.ws_pool.misses() - misses0;
    let mut out = vec![
        ("op", Json::str("app")),
        ("app", Json::str(app.name())),
        ("dataset", Json::str(&ds.name)),
        ("scheme", Json::Str(scheme.name())),
        ("schedule", Json::str(schedule.name())),
    ];
    out.extend(fields);
    out.push((
        "pool",
        Json::obj(vec![
            ("hits", hits.into()),
            ("misses", misses.into()),
            ("warm", (misses == 0).into()),
        ]),
    ));
    Ok(ok_response(out))
}

fn panic_msg(e: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = e.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = e.downcast_ref::<String>() {
        s.clone()
    } else {
        "kernel panicked".to_string()
    }
}

fn op_stats(state: &ServerState) -> OpResult {
    // One registry snapshot for the array AND the totals, so they always
    // agree even when loads/unloads race this request.
    let resident = state.registry.list();
    let datasets: Vec<Json> = resident
        .iter()
        .map(|ds| {
            Json::obj(vec![
                ("name", Json::str(&ds.name)),
                ("mem_bytes", ds.mem_bytes().into()),
                ("backend", Json::str(ds.backend().name())),
                ("mapped_bytes", ds.mapped_bytes().into()),
            ])
        })
        .collect();
    let total_mem: u64 = resident.iter().map(|ds| ds.mem_bytes()).sum();
    let total_mapped: u64 = resident.iter().map(|ds| ds.mapped_bytes()).sum();
    let hits = state.ws_pool.hits();
    let misses = state.ws_pool.misses();
    let takes = hits + misses;
    let busy = match busy_spread(&state.exec_stats.busy_seconds()) {
        Some(sp) => Json::obj(vec![
            ("threads", sp.threads.into()),
            ("max_over_mean", sp.ratio().into()),
        ]),
        None => Json::Null,
    };
    // Overall request-latency quantiles from the unlabeled histogram
    // (the `metrics` verb has the per-verb and per-dataset series).
    let lat = state
        .metrics
        .histogram("request_latency_us", &[])
        .snapshot();
    Ok(ok_response(vec![
        ("op", Json::str("stats")),
        (
            "uptime_seconds",
            state.started.elapsed().as_secs_f64().into(),
        ),
        ("requests", state.requests().into()),
        (
            "requests_total",
            state.metrics.counter("requests_total", &[]).get().into(),
        ),
        (
            "errors_total",
            state.metrics.counter("errors_total", &[]).get().into(),
        ),
        (
            "latency",
            Json::obj(vec![
                ("p50", (lat.quantile(0.50) as f64 / 1e6).into()),
                ("p95", (lat.quantile(0.95) as f64 / 1e6).into()),
                ("p99", (lat.quantile(0.99) as f64 / 1e6).into()),
                ("count", lat.count.into()),
            ]),
        ),
        ("datasets", Json::Arr(datasets)),
        ("total_mem_bytes", total_mem.into()),
        ("total_mapped_bytes", total_mapped.into()),
        (
            "pool",
            Json::obj(vec![
                ("hits", hits.into()),
                ("misses", misses.into()),
                ("retained", state.ws_pool.retained().into()),
                (
                    "hit_rate",
                    if takes > 0 {
                        (hits as f64 / takes as f64).into()
                    } else {
                        Json::Null
                    },
                ),
            ]),
        ),
        ("busy", busy),
    ]))
}

/// Refresh the gauges that mirror state owned elsewhere (`WsPool`
/// counters, `ExecStats` busy spread, registry residency), so every
/// snapshot the `metrics` verb serves is current without those
/// subsystems having to push on each change.
fn publish_gauges(state: &ServerState) {
    let m = &state.metrics;
    m.gauge("uptime_seconds", &[])
        .set(state.started.elapsed().as_secs_f64());
    m.gauge("ws_pool_hits", &[])
        .set(state.ws_pool.hits() as f64);
    m.gauge("ws_pool_misses", &[])
        .set(state.ws_pool.misses() as f64);
    m.gauge("ws_pool_retained", &[])
        .set(state.ws_pool.retained() as f64);
    if let Some(sp) = busy_spread(&state.exec_stats.busy_seconds()) {
        m.gauge("busy_threads", &[]).set(sp.threads as f64);
        m.gauge("busy_max_over_mean", &[]).set(sp.ratio());
    }
    let resident = state.registry.list();
    m.gauge("datasets_resident", &[]).set(resident.len() as f64);
    m.gauge("resident_bytes", &[])
        .set(resident.iter().map(|ds| ds.mem_bytes()).sum::<u64>() as f64);
    m.gauge("mapped_bytes", &[])
        .set(resident.iter().map(|ds| ds.mapped_bytes()).sum::<u64>() as f64);
}

fn series_fields(series: &Series) -> Vec<(&'static str, Json)> {
    vec![
        ("name", Json::str(&series.name)),
        (
            "labels",
            Json::Obj(
                series
                    .labels
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                    .collect(),
            ),
        ),
    ]
}

fn hist_json(series: &Series, h: &HistSnapshot) -> Json {
    let mut fields = series_fields(series);
    fields.extend([
        ("count", h.count.into()),
        ("sum", h.sum.into()),
        ("max", h.max.into()),
        ("mean", h.mean().into()),
        ("p50", h.quantile(0.50).into()),
        ("p95", h.quantile(0.95).into()),
        ("p99", h.quantile(0.99).into()),
        (
            "buckets",
            Json::Arr(
                h.nonzero()
                    .into_iter()
                    .map(|(le, n)| Json::obj(vec![("le", le.into()), ("count", n.into())]))
                    .collect(),
            ),
        ),
    ]);
    Json::obj(fields)
}

fn op_metrics(state: &ServerState, req: &Json) -> OpResult {
    publish_gauges(state);
    let snap = state.metrics.snapshot();
    match opt_str(req, "format").map_err(bad)?.unwrap_or("json") {
        "prometheus" => Ok(ok_response(vec![
            ("op", Json::str("metrics")),
            ("format", Json::str("prometheus")),
            ("content_type", Json::str("text/plain; version=0.0.4")),
            ("text", Json::Str(snap.to_prometheus())),
        ])),
        "json" => {
            let counters: Vec<Json> = snap
                .counters
                .iter()
                .map(|(s, v)| {
                    let mut f = series_fields(s);
                    f.push(("value", (*v).into()));
                    Json::obj(f)
                })
                .collect();
            let gauges: Vec<Json> = snap
                .gauges
                .iter()
                .map(|(s, v)| {
                    let mut f = series_fields(s);
                    f.push(("value", (*v).into()));
                    Json::obj(f)
                })
                .collect();
            let histograms: Vec<Json> = snap
                .histograms
                .iter()
                .map(|(s, h)| hist_json(s, h))
                .collect();
            Ok(ok_response(vec![
                ("op", Json::str("metrics")),
                ("format", Json::str("json")),
                ("counters", Json::Arr(counters)),
                ("gauges", Json::Arr(gauges)),
                ("histograms", Json::Arr(histograms)),
            ]))
        }
        other => Err(bad(format!(
            "'format' must be json|prometheus, got '{other}'"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state_with(dir_tag: &str, n: usize) -> (Arc<ServerState>, String) {
        let dir = std::env::temp_dir().join(format!("mspgemm_serve_server_{dir_tag}"));
        std::fs::create_dir_all(&dir).unwrap();
        let mtx = dir.join("g.mtx");
        let g = mspgemm_gen::er_symmetric(n, 6, 3);
        mspgemm_io::mtx::write_mtx_file(&mtx, &g).unwrap();
        let state = Arc::new(ServerState::new(ServeConfig {
            cache: CachePolicy::Off,
            ..ServeConfig::default()
        }));
        (state, mtx.to_str().unwrap().to_string())
    }

    fn ok(state: &ServerState, line: &str) -> Json {
        let (resp, stop) = handle_request(state, line);
        assert!(!stop);
        assert_eq!(
            resp.get("ok"),
            Some(&Json::Bool(true)),
            "expected success: {}",
            resp.to_line()
        );
        resp
    }

    fn err_code(state: &ServerState, line: &str) -> String {
        let (resp, _) = handle_request(state, line);
        assert_eq!(
            resp.get("ok"),
            Some(&Json::Bool(false)),
            "{}",
            resp.to_line()
        );
        resp.get("error")
            .unwrap()
            .get("code")
            .unwrap()
            .as_str()
            .unwrap()
            .to_string()
    }

    #[test]
    fn request_lifecycle_load_mxm_warm_unload() {
        let (state, path) = state_with("lifecycle", 120);
        ok(&state, r#"{"op":"ping"}"#);
        let resp = ok(
            &state,
            &format!(r#"{{"op":"load","path":"{path}","name":"g"}}"#),
        );
        assert_eq!(resp.get("name").unwrap().as_str(), Some("g"));

        let q = r#"{"op":"mxm","dataset":"g","algo":"hash","phases":2,"reps":1}"#;
        let first = ok(&state, q);
        let second = ok(&state, q);
        assert_eq!(
            first.get("fingerprint"),
            second.get("fingerprint"),
            "identical requests must return identical results"
        );
        let pool = second.get("pool").unwrap();
        assert_eq!(pool.get("misses").unwrap().as_u64(), Some(0));
        assert_eq!(pool.get("warm").unwrap().as_bool(), Some(true));

        ok(&state, r#"{"op":"unload","name":"g"}"#);
        assert_eq!(err_code(&state, q), "unknown_dataset");
    }

    #[test]
    fn inner_reports_no_schedule_or_pool() {
        let (state, path) = state_with("inner_null", 90);
        ok(
            &state,
            &format!(r#"{{"op":"load","path":"{path}","name":"g"}}"#),
        );
        let resp = ok(&state, r#"{"op":"mxm","dataset":"g","algo":"inner"}"#);
        assert_eq!(
            resp.get("schedule"),
            Some(&Json::Null),
            "{}",
            resp.to_line()
        );
        assert_eq!(resp.get("pool"), Some(&Json::Null), "{}", resp.to_line());
    }

    #[test]
    fn error_codes_cover_the_protocol() {
        let (state, path) = state_with("errors", 60);
        assert_eq!(err_code(&state, "not json"), "bad_request");
        assert_eq!(err_code(&state, "[1,2]"), "bad_request");
        assert_eq!(err_code(&state, r#"{"op":"frobnicate"}"#), "unknown_op");
        assert_eq!(err_code(&state, r#"{"op":"mxm"}"#), "bad_request");
        assert_eq!(
            err_code(&state, r#"{"op":"mxm","dataset":"nope"}"#),
            "unknown_dataset"
        );
        assert_eq!(
            err_code(&state, r#"{"op":"load","path":"/no/such/file.mtx"}"#),
            "load_failed"
        );
        ok(&state, &format!(r#"{{"op":"load","path":"{path}"}}"#));
        assert_eq!(
            err_code(&state, &format!(r#"{{"op":"load","path":"{path}"}}"#)),
            "already_loaded"
        );
        // MCA × complement is a kernel-level rejection.
        assert_eq!(
            err_code(
                &state,
                r#"{"op":"mxm","dataset":"g","algo":"mca","mask":"complement"}"#
            ),
            "exec_failed"
        );
        // Unknown algo is a request-level rejection.
        assert_eq!(
            err_code(&state, r#"{"op":"mxm","dataset":"g","algo":"quantum"}"#),
            "bad_request"
        );
    }

    #[test]
    fn apps_run_and_reuse_the_pool() {
        let (state, path) = state_with("apps", 100);
        ok(
            &state,
            &format!(r#"{{"op":"load","path":"{path}","name":"g"}}"#),
        );
        let tc = ok(
            &state,
            r#"{"op":"app","dataset":"g","app":"tc","scheme":"hash-1p"}"#,
        );
        assert!(tc.get("triangles").unwrap().as_u64().is_some());
        let tc2 = ok(
            &state,
            r#"{"op":"app","dataset":"g","app":"tc","scheme":"hash-1p"}"#,
        );
        assert_eq!(tc.get("triangles"), tc2.get("triangles"));
        assert_eq!(
            tc2.get("pool").unwrap().get("misses").unwrap().as_u64(),
            Some(0),
            "second tc must be allocation-free"
        );
        let kt = ok(&state, r#"{"op":"app","dataset":"g","app":"ktruss","k":3}"#);
        assert!(kt.get("iterations").unwrap().as_u64().unwrap() >= 1);
        let bc = ok(
            &state,
            r#"{"op":"app","dataset":"g","app":"bc","batch":4,"scheme":"msa-1p"}"#,
        );
        assert_eq!(bc.get("batch").unwrap().as_u64(), Some(4));
        // BC × MCA is rejected before execution.
        assert_eq!(
            err_code(
                &state,
                r#"{"op":"app","dataset":"g","app":"bc","scheme":"mca-1p"}"#
            ),
            "exec_failed"
        );
        assert_eq!(
            err_code(&state, r#"{"op":"app","dataset":"g","app":"ktruss","k":2}"#),
            "bad_request"
        );
    }

    #[test]
    fn load_and_stats_report_backend_and_mapped_bytes() {
        // Heap-loaded text dataset: backend "heap", zero mapped bytes.
        let (state, path) = state_with("backend_heap", 60);
        let resp = ok(
            &state,
            &format!(r#"{{"op":"load","path":"{path}","name":"g"}}"#),
        );
        assert_eq!(resp.get("backend").unwrap().as_str(), Some("heap"));
        assert_eq!(resp.get("mapped_bytes").unwrap().as_u64(), Some(0));
        let stats = ok(&state, r#"{"op":"stats"}"#);
        let ds = &stats.get("datasets").unwrap().as_arr().unwrap()[0];
        assert_eq!(ds.get("backend").unwrap().as_str(), Some("heap"));
        assert_eq!(stats.get("total_mapped_bytes").unwrap().as_u64(), Some(0));

        // A v2 .msb loaded with "mmap": true comes back mapped (on
        // targets that support zero-copy; elsewhere it stays heap).
        let dir = std::env::temp_dir().join("mspgemm_serve_server_backend_mmap");
        std::fs::create_dir_all(&dir).unwrap();
        let msb = dir.join("m.msb");
        let g = mspgemm_gen::er_symmetric(60, 6, 3);
        let mut buf = Vec::new();
        mspgemm_io::msb::write_msb(&mut buf, &g).unwrap();
        std::fs::write(&msb, &buf).unwrap();
        let resp = ok(
            &state,
            &format!(
                r#"{{"op":"load","path":"{}","name":"m","mmap":true}}"#,
                msb.to_str().unwrap()
            ),
        );
        if cfg!(all(target_endian = "little", target_pointer_width = "64")) {
            assert_eq!(resp.get("backend").unwrap().as_str(), Some("mmap"));
            assert!(resp.get("mapped_bytes").unwrap().as_u64().unwrap() > 0);
            let stats = ok(&state, r#"{"op":"stats"}"#);
            assert!(stats.get("total_mapped_bytes").unwrap().as_u64().unwrap() > 0);
        }
        // Results off a mapped operand agree with the heap-loaded twin.
        let m1 = ok(&state, r#"{"op":"mxm","dataset":"m","algo":"hash"}"#);
        assert!(m1.get("fingerprint").unwrap().as_str().is_some());
        ok(&state, r#"{"op":"unload","name":"m"}"#);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Find the entry with the given name (and label subset) in a
    /// `metrics` response array.
    fn find_series<'a>(arr: &'a Json, name: &str, labels: &[(&str, &str)]) -> Option<&'a Json> {
        arr.as_arr().unwrap().iter().find(|e| {
            e.get("name").unwrap().as_str() == Some(name)
                && labels.iter().all(|(k, v)| {
                    e.get("labels").unwrap().get(k).and_then(Json::as_str) == Some(*v)
                })
        })
    }

    #[test]
    fn ping_reports_version_and_uptime() {
        let (state, _) = state_with("ping_fields", 40);
        let resp = ok(&state, r#"{"op":"ping"}"#);
        assert_eq!(
            resp.get("version").unwrap().as_str(),
            Some(env!("CARGO_PKG_VERSION"))
        );
        assert!(resp.get("uptime_s").unwrap().as_f64().unwrap() >= 0.0);
    }

    #[test]
    fn metrics_verb_counts_requests_and_serves_quantiles() {
        let (state, path) = state_with("metrics", 80);
        ok(&state, r#"{"op":"ping"}"#);
        ok(
            &state,
            &format!(r#"{{"op":"load","path":"{path}","name":"g"}}"#),
        );
        ok(&state, r#"{"op":"mxm","dataset":"g","algo":"hash"}"#);
        ok(&state, r#"{"op":"mxm","dataset":"g","algo":"hash"}"#);
        assert_eq!(err_code(&state, "not json"), "bad_request");

        // 5 requests so far; the metrics request records *after* its own
        // snapshot, so it reports exactly what was issued before it.
        let m = ok(&state, r#"{"op":"metrics"}"#);
        let counters = m.get("counters").unwrap();
        let total = find_series(counters, "requests_total", &[]).unwrap();
        assert_eq!(total.get("value").unwrap().as_u64(), Some(5));
        let mxm = find_series(counters, "requests_total", &[("verb", "mxm")]).unwrap();
        assert_eq!(mxm.get("value").unwrap().as_u64(), Some(2));
        let errors = find_series(counters, "errors_total", &[]).unwrap();
        assert_eq!(errors.get("value").unwrap().as_u64(), Some(1));
        let ingest = find_series(counters, "ingest_bytes_total", &[]).unwrap();
        assert!(ingest.get("value").unwrap().as_u64().unwrap() > 0);

        let hists = m.get("histograms").unwrap();
        let lat = find_series(hists, "request_latency_us", &[("verb", "mxm")]).unwrap();
        assert_eq!(lat.get("count").unwrap().as_u64(), Some(2));
        let p50 = lat.get("p50").unwrap().as_u64().unwrap();
        let p99 = lat.get("p99").unwrap().as_u64().unwrap();
        assert!(p50 <= p99, "quantiles must be monotone");
        assert!(
            find_series(hists, "queue_wait_us", &[("verb", "mxm")]).is_some(),
            "queue-wait series exists per verb"
        );
        assert!(
            find_series(hists, "dataset_request_latency_us", &[("dataset", "g")]).is_some(),
            "per-dataset latency series exists"
        );

        // Gauges mirror the pool and residency at snapshot time.
        let gauges = m.get("gauges").unwrap();
        let resident = find_series(gauges, "datasets_resident", &[]).unwrap();
        assert_eq!(resident.get("value").unwrap().as_f64(), Some(1.0));

        // Prometheus exposition of the same registry.
        let prom = ok(&state, r#"{"op":"metrics","format":"prometheus"}"#);
        let text = prom.get("text").unwrap().as_str().unwrap();
        assert!(text.contains("# TYPE requests_total counter"));
        assert!(
            text.contains("requests_total 6"),
            "json metrics request counted: {text}"
        );
        assert!(text.contains("request_latency_us_bucket"));
        assert!(text.contains("# TYPE ws_pool_hits gauge"));

        assert_eq!(
            err_code(&state, r#"{"op":"metrics","format":"xml"}"#),
            "bad_request"
        );
    }

    #[test]
    fn stats_reports_totals_and_latency_quantiles() {
        let (state, path) = state_with("stats_latency", 70);
        ok(
            &state,
            &format!(r#"{{"op":"load","path":"{path}","name":"g"}}"#),
        );
        ok(&state, r#"{"op":"mxm","dataset":"g","algo":"msa"}"#);
        err_code(&state, r#"{"op":"mxm","dataset":"nope"}"#);
        let stats = ok(&state, r#"{"op":"stats"}"#);
        assert_eq!(stats.get("requests_total").unwrap().as_u64(), Some(3));
        assert_eq!(stats.get("errors_total").unwrap().as_u64(), Some(1));
        let lat = stats.get("latency").unwrap();
        assert_eq!(lat.get("count").unwrap().as_u64(), Some(3));
        let p50 = lat.get("p50").unwrap().as_f64().unwrap();
        let p99 = lat.get("p99").unwrap().as_f64().unwrap();
        assert!(p50 >= 0.0 && p50 <= p99, "seconds, monotone: {p50} {p99}");
    }

    #[test]
    fn stats_and_shutdown_flow() {
        let (state, path) = state_with("stats", 80);
        ok(
            &state,
            &format!(r#"{{"op":"load","path":"{path}","name":"g"}}"#),
        );
        ok(&state, r#"{"op":"mxm","dataset":"g","algo":"msa"}"#);
        let stats = ok(&state, r#"{"op":"stats"}"#);
        assert!(stats.get("requests").unwrap().as_u64().unwrap() >= 2);
        assert!(stats.get("total_mem_bytes").unwrap().as_u64().unwrap() > 0);
        assert!(stats.get("pool").unwrap().get("hit_rate").is_some());

        let (resp, stop) = handle_request(&state, r#"{"op":"shutdown"}"#);
        assert!(stop);
        assert_eq!(resp.get("stopping").unwrap().as_bool(), Some(true));
        state.begin_shutdown();
        let (resp, stop) = handle_request(&state, r#"{"op":"ping"}"#);
        assert!(!stop);
        assert_eq!(
            resp.get("error").unwrap().get("code").unwrap().as_str(),
            Some("shutting_down")
        );
    }
}
