//! # mspgemm-formats
//!
//! The shared Matrix Market (`.mtx`) lexical layer: banner / size-line /
//! entry tokenizers, header scanning over byte buffers, and
//! newline-aligned chunk splitting for parallel ingest.
//!
//! This crate is a dependency-free leaf so every reader in the workspace
//! drives exactly one tokenizer: `mspgemm_io::mtx::read_mtx` (streaming,
//! any `Read`) and `mspgemm_io::mtx::read_mtx_bytes` (chunked parallel
//! over a byte buffer) both tokenize and validate entries here, which is
//! what guarantees their outputs and error positions are identical.
//!
//! Everything works on `&[u8]`: the parallel reader splits multi-GB
//! buffers into byte ranges, and per-line UTF-8 conversion would be pure
//! overhead — tokens are ASCII in every Matrix Market file in the wild,
//! and non-UTF-8 garbage inside a token still fails cleanly at the
//! numeric parse.

#![warn(missing_docs)]

use std::ops::Range;

/// Value field of a Matrix Market file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MtxField {
    /// Floating-point values.
    Real,
    /// Integer values (parsed into `f64`; SuiteSparse graphs use small
    /// weights that are exactly representable).
    Integer,
    /// No stored values; every entry reads as `1.0`.
    Pattern,
}

/// Symmetry declaration of a Matrix Market file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MtxSymmetry {
    /// Entries are stored explicitly.
    General,
    /// Only the lower triangle is stored; off-diagonal entries mirror.
    Symmetric,
}

/// The parsed banner + size line of a Matrix Market file.
#[derive(Clone, Copy, Debug)]
pub struct MtxHeader {
    /// Value field.
    pub field: MtxField,
    /// Symmetry.
    pub symmetry: MtxSymmetry,
    /// Declared rows.
    pub nrows: usize,
    /// Declared columns.
    pub ncols: usize,
    /// Declared stored entries (before symmetric expansion).
    pub stored_entries: usize,
}

/// A lexical/structural error with the 1-based line it was detected on.
#[derive(Clone, Debug)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description.
    pub msg: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// One tokenized coordinate entry, indices still 1-based as in the file.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Entry {
    /// 1-based row index.
    pub i: usize,
    /// 1-based column index.
    pub j: usize,
    /// Value (`1.0` for pattern files).
    pub v: f64,
}

const fn is_ws(b: u8) -> bool {
    matches!(b, b' ' | b'\t' | b'\r' | b'\n' | b'\x0b' | b'\x0c')
}

/// The next line starting at byte `pos`: the line's content (without the
/// terminating `\n` or any trailing `\r`) and the offset of the line
/// after it. `None` once `pos` reaches the end of the buffer; a final
/// line without a trailing newline is still yielded.
pub fn next_line(bytes: &[u8], pos: usize) -> Option<(&[u8], usize)> {
    if pos >= bytes.len() {
        return None;
    }
    let rest = &bytes[pos..];
    let (mut line, next) = match rest.iter().position(|&b| b == b'\n') {
        Some(nl) => (&rest[..nl], pos + nl + 1),
        None => (rest, bytes.len()),
    };
    if let [head @ .., b'\r'] = line {
        line = head;
    }
    Some((line, next))
}

/// Whether a line carries no entry: blank or a `%` comment.
pub fn is_skippable(line: &[u8]) -> bool {
    match line.iter().position(|&b| !is_ws(b)) {
        None => true,
        Some(k) => line[k] == b'%',
    }
}

/// Iterator over whitespace-separated tokens of one line.
struct Tokens<'a> {
    rest: &'a [u8],
}

fn tokens(line: &[u8]) -> Tokens<'_> {
    Tokens { rest: line }
}

impl<'a> Iterator for Tokens<'a> {
    type Item = &'a [u8];
    fn next(&mut self) -> Option<&'a [u8]> {
        let start = self.rest.iter().position(|&b| !is_ws(b))?;
        let rest = &self.rest[start..];
        let end = rest.iter().position(|&b| is_ws(b)).unwrap_or(rest.len());
        self.rest = &rest[end..];
        Some(&rest[..end])
    }
}

fn lossy(tok: &[u8]) -> String {
    String::from_utf8_lossy(tok).into_owned()
}

/// Overflow-checked base-10 `usize` from ASCII digits; `None` on empty
/// input, a non-digit byte, or overflow.
fn parse_index(tok: &[u8]) -> Option<usize> {
    if tok.is_empty() {
        return None;
    }
    let mut v: usize = 0;
    for &b in tok {
        let d = b.wrapping_sub(b'0');
        if d > 9 {
            return None;
        }
        v = v.checked_mul(10)?.checked_add(d as usize)?;
    }
    Some(v)
}

/// Parse the `%%MatrixMarket ...` banner into field + symmetry.
pub fn parse_banner(line: &[u8]) -> Result<(MtxField, MtxSymmetry), String> {
    let toks: Vec<&[u8]> = tokens(line).collect();
    let bad = || format!("bad banner: {}", lossy(line));
    if toks.len() < 4
        || !toks[0].eq_ignore_ascii_case(b"%%matrixmarket")
        || !toks[1].eq_ignore_ascii_case(b"matrix")
    {
        return Err(bad());
    }
    if !toks[2].eq_ignore_ascii_case(b"coordinate") {
        return Err(format!(
            "unsupported format '{}' (only 'coordinate')",
            lossy(toks[2])
        ));
    }
    let field = if toks[3].eq_ignore_ascii_case(b"real") {
        MtxField::Real
    } else if toks[3].eq_ignore_ascii_case(b"integer") {
        MtxField::Integer
    } else if toks[3].eq_ignore_ascii_case(b"pattern") {
        MtxField::Pattern
    } else {
        return Err(format!(
            "unsupported value field '{}' (real|integer|pattern)",
            lossy(toks[3])
        ));
    };
    let sym = toks.get(4).copied().unwrap_or(b"general");
    let symmetry = if sym.eq_ignore_ascii_case(b"general") {
        MtxSymmetry::General
    } else if sym.eq_ignore_ascii_case(b"symmetric") {
        MtxSymmetry::Symmetric
    } else {
        return Err(format!(
            "unsupported symmetry '{}' (general|symmetric)",
            lossy(sym)
        ));
    };
    Ok((field, symmetry))
}

/// Parse the `nrows ncols nnz` size line.
pub fn parse_size_line(line: &[u8]) -> Result<(usize, usize, usize), String> {
    let toks: Vec<&[u8]> = tokens(line).collect();
    if toks.len() != 3 {
        return Err(format!(
            "size line needs 'nrows ncols nnz', got: {}",
            lossy(line).trim()
        ));
    }
    let parse = |tok: &[u8], what: &str| {
        parse_index(tok).ok_or_else(|| format!("bad {what} '{}'", lossy(tok)))
    };
    Ok((
        parse(toks[0], "nrows")?,
        parse(toks[1], "ncols")?,
        parse(toks[2], "nnz")?,
    ))
}

/// Scan the banner, comments, and size line at the head of a buffer.
///
/// Returns the header, the byte offset of the entry section (the first
/// byte after the size line's newline), and the number of lines consumed
/// — the line-number base for error reporting in the entry section.
pub fn scan_header(bytes: &[u8]) -> Result<(MtxHeader, usize, usize), ParseError> {
    let err = |line: usize, msg: String| ParseError { line, msg };
    let mut lineno = 1usize;
    let Some((banner, mut pos)) = next_line(bytes, 0) else {
        return Err(err(1, "empty input".into()));
    };
    let (field, symmetry) = parse_banner(banner).map_err(|m| err(1, m))?;
    while let Some((line, next)) = next_line(bytes, pos) {
        lineno += 1;
        pos = next;
        if is_skippable(line) {
            continue;
        }
        let (nrows, ncols, stored_entries) = parse_size_line(line).map_err(|m| err(lineno, m))?;
        return Ok((
            MtxHeader {
                field,
                symmetry,
                nrows,
                ncols,
                stored_entries,
            },
            pos,
            lineno,
        ));
    }
    Err(err(lineno, "missing size line".into()))
}

/// Tokenize one entry line under the header's value field. Indices stay
/// 1-based; bounds/symmetry checks live in [`validate_entry`].
pub fn parse_entry(line: &[u8], field: MtxField) -> Result<Entry, String> {
    let mut it = tokens(line);
    let tok = it.next().ok_or("entry missing row index")?;
    let i = parse_index(tok).ok_or_else(|| format!("bad row index '{}'", lossy(tok)))?;
    let tok = it.next().ok_or("entry missing column index")?;
    let j = parse_index(tok).ok_or_else(|| format!("bad column index '{}'", lossy(tok)))?;
    let v = if field == MtxField::Pattern {
        1.0
    } else {
        let tok = it.next().ok_or("entry missing value")?;
        let v: f64 = std::str::from_utf8(tok)
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| format!("bad value '{}'", lossy(tok)))?;
        if v.is_nan() {
            return Err("NaN value".into());
        }
        v
    };
    if it.next().is_some() {
        return Err("trailing tokens after entry".into());
    }
    Ok(Entry { i, j, v })
}

/// Check a tokenized entry against the header: 1-based, in bounds, and
/// (for symmetric files) in the lower triangle.
pub fn validate_entry(h: &MtxHeader, e: &Entry) -> Result<(), String> {
    if e.i == 0 || e.j == 0 {
        return Err("indices are 1-based; found 0".into());
    }
    if e.i > h.nrows || e.j > h.ncols {
        return Err(format!(
            "entry ({},{}) outside declared shape {}x{}",
            e.i, e.j, h.nrows, h.ncols
        ));
    }
    if h.symmetry == MtxSymmetry::Symmetric && e.j > e.i {
        return Err(format!(
            "symmetric file stores the lower triangle, found ({},{}) above",
            e.i, e.j
        ));
    }
    Ok(())
}

/// Split a buffer into at most `parts` contiguous byte ranges whose
/// boundaries fall just after `\n` bytes, so no line is ever split
/// across ranges. Covers the buffer exactly, in order; a final line
/// without a trailing newline lands in the last range.
pub fn chunk_at_newlines(bytes: &[u8], parts: usize) -> Vec<Range<usize>> {
    let len = bytes.len();
    if len == 0 {
        return Vec::new();
    }
    let parts = parts.max(1);
    let target = len.div_ceil(parts);
    let mut out = Vec::with_capacity(parts);
    let mut start = 0usize;
    while start < len {
        let mut end = (start + target).min(len);
        if end < len && bytes[end - 1] != b'\n' {
            end = match bytes[end..].iter().position(|&b| b == b'\n') {
                Some(k) => end + k + 1,
                None => len,
            };
        }
        out.push(start..end);
        start = end;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lines_handle_crlf_and_missing_final_newline() {
        let b = b"ab\r\ncd\n\nef";
        let (l1, p) = next_line(b, 0).unwrap();
        assert_eq!(l1, b"ab");
        let (l2, p) = next_line(b, p).unwrap();
        assert_eq!(l2, b"cd");
        let (l3, p) = next_line(b, p).unwrap();
        assert_eq!(l3, b"");
        let (l4, p) = next_line(b, p).unwrap();
        assert_eq!(l4, b"ef");
        assert!(next_line(b, p).is_none());
    }

    #[test]
    fn skippable_lines() {
        assert!(is_skippable(b""));
        assert!(is_skippable(b"   \t"));
        assert!(is_skippable(b"% comment"));
        assert!(is_skippable(b"  % indented comment"));
        assert!(!is_skippable(b"1 2 3"));
    }

    #[test]
    fn banner_variants() {
        let (f, s) = parse_banner(b"%%MatrixMarket matrix coordinate real general").unwrap();
        assert_eq!((f, s), (MtxField::Real, MtxSymmetry::General));
        let (f, s) = parse_banner(b"%%matrixmarket MATRIX coordinate PATTERN symmetric").unwrap();
        assert_eq!((f, s), (MtxField::Pattern, MtxSymmetry::Symmetric));
        // Symmetry defaults to general when omitted.
        let (_, s) = parse_banner(b"%%MatrixMarket matrix coordinate integer").unwrap();
        assert_eq!(s, MtxSymmetry::General);
        assert!(parse_banner(b"hello").is_err());
        assert!(parse_banner(b"%%MatrixMarket matrix array real general").is_err());
        assert!(parse_banner(b"%%MatrixMarket matrix coordinate complex general").is_err());
        assert!(parse_banner(b"%%MatrixMarket matrix coordinate real hermitian").is_err());
    }

    #[test]
    fn size_line_parsing() {
        assert_eq!(parse_size_line(b" 3\t4  5 ").unwrap(), (3, 4, 5));
        assert!(parse_size_line(b"3 4").is_err());
        assert!(parse_size_line(b"3 4 5 6").is_err());
        assert!(parse_size_line(b"3 4 x").is_err());
        assert!(parse_size_line(b"3 -4 5").is_err());
        // usize::MAX parses (hardening against it is the reader's job);
        // one past it overflows to an error.
        assert!(parse_size_line(format!("1 1 {}", usize::MAX).as_bytes()).is_ok());
        assert!(parse_size_line(b"1 1 99999999999999999999999999").is_err());
    }

    #[test]
    fn header_scan_positions_and_lines() {
        let text = b"%%MatrixMarket matrix coordinate real general\n% c\n\n3 4 2\n1 1 1.0\n";
        let (h, off, lines) = scan_header(text).unwrap();
        assert_eq!((h.nrows, h.ncols, h.stored_entries), (3, 4, 2));
        assert_eq!(lines, 4);
        assert_eq!(&text[off..], b"1 1 1.0\n");
    }

    #[test]
    fn header_scan_errors_carry_lines() {
        assert_eq!(scan_header(b"").unwrap_err().line, 1);
        assert_eq!(scan_header(b"nope\n").unwrap_err().line, 1);
        let e = scan_header(b"%%MatrixMarket matrix coordinate real general\nbogus size\n")
            .unwrap_err();
        assert_eq!(e.line, 2);
        let e = scan_header(b"%%MatrixMarket matrix coordinate real general\n% only comments\n")
            .unwrap_err();
        assert_eq!((e.line, e.msg.as_str()), (2, "missing size line"));
    }

    #[test]
    fn entry_tokenizing() {
        let e = parse_entry(b" 3\t7  -2.5 ", MtxField::Real).unwrap();
        assert_eq!(
            e,
            Entry {
                i: 3,
                j: 7,
                v: -2.5
            }
        );
        let e = parse_entry(b"3 7", MtxField::Pattern).unwrap();
        assert_eq!(e.v, 1.0);
        // Integer field parses through the float path exactly.
        assert_eq!(parse_entry(b"1 1 7", MtxField::Integer).unwrap().v, 7.0);
        assert!(parse_entry(b"", MtxField::Real).is_err());
        assert!(parse_entry(b"3", MtxField::Real).is_err());
        assert!(parse_entry(b"3 7", MtxField::Real).is_err());
        assert!(parse_entry(b"3 7 abc", MtxField::Real).is_err());
        assert!(parse_entry(b"3 7 NaN", MtxField::Real).is_err());
        assert!(parse_entry(b"3 7 1.0 9", MtxField::Real).is_err());
        assert!(parse_entry(b"3 7 9", MtxField::Pattern).is_err());
        assert!(parse_entry(b"x 7 1.0", MtxField::Real).is_err());
        assert!(parse_entry(b"-3 7 1.0", MtxField::Real).is_err());
    }

    #[test]
    fn entry_validation() {
        let h = MtxHeader {
            field: MtxField::Real,
            symmetry: MtxSymmetry::Symmetric,
            nrows: 5,
            ncols: 5,
            stored_entries: 0,
        };
        let ok = |i, j| validate_entry(&h, &Entry { i, j, v: 1.0 });
        assert!(ok(5, 5).is_ok());
        assert!(ok(3, 1).is_ok());
        assert!(ok(0, 1).is_err());
        assert!(ok(1, 0).is_err());
        assert!(ok(6, 1).is_err());
        assert!(ok(1, 6).is_err());
        assert!(ok(1, 2).is_err(), "upper triangle rejected when symmetric");
        let g = MtxHeader {
            symmetry: MtxSymmetry::General,
            ..h
        };
        assert!(validate_entry(&g, &Entry { i: 1, j: 2, v: 1.0 }).is_ok());
    }

    #[test]
    fn chunks_cover_and_respect_lines() {
        let text = b"1 1 1.0\n2 2 2.0\n3 3 3.0\n4 4 4.0\n5 5 5.0\n";
        for parts in [1usize, 2, 3, 4, 10, 100] {
            let ranges = chunk_at_newlines(text, parts);
            assert!(ranges.len() <= parts.max(1));
            let mut pos = 0;
            for r in &ranges {
                assert_eq!(r.start, pos, "contiguous");
                assert!(r.end > r.start, "non-empty");
                assert!(
                    r.end == text.len() || text[r.end - 1] == b'\n',
                    "boundary mid-line at {} for parts={parts}",
                    r.end
                );
                pos = r.end;
            }
            assert_eq!(pos, text.len(), "full coverage for parts={parts}");
        }
        assert!(chunk_at_newlines(b"", 4).is_empty());
        // No trailing newline: the tail still lands in the last range.
        let ranges = chunk_at_newlines(b"1 1 1.0\n2 2", 2);
        assert_eq!(ranges.last().unwrap().end, 11);
        // One giant line cannot be split at all.
        assert_eq!(chunk_at_newlines(b"0123456789", 4), vec![0..10]);
    }
}
