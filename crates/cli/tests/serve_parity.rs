//! Result parity between the offline and serving paths: `mxm query mxm`
//! against a preloaded dataset must return the **byte-identical** output
//! matrix (same fingerprint) as `mxm run` with the same options — and the
//! second query against a resident dataset must report a warm workspace
//! pool (zero misses).

use mspgemm_serve::{ServeConfig, Server};
use std::path::PathBuf;

fn dispatch(args: &[&str]) -> Result<String, String> {
    let argv: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    let mut out = Vec::new();
    mspgemm_cli::dispatch(&argv, &mut out)?;
    Ok(String::from_utf8(out).unwrap())
}

fn fixture(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mxm_parity_{tag}"));
    std::fs::create_dir_all(&dir).unwrap();
    let mtx = dir.join("g.mtx");
    // Skewed enough that algorithms/phases disagree if anything is off.
    let g = mspgemm_gen::rmat_symmetric(8, mspgemm_gen::RmatParams::default(), 5);
    mspgemm_io::mtx::write_mtx_file(&mtx, &g).unwrap();
    mtx
}

fn run_fingerprint(text: &str) -> &str {
    text.lines()
        .find_map(|l| l.strip_prefix("output   :"))
        .and_then(|l| l.split("fingerprint ").nth(1))
        .expect("run report must carry a fingerprint")
}

fn query_field<'a>(json: &'a str, key: &str) -> &'a str {
    let pat = format!("\"{key}\":");
    let rest = &json[json.find(&pat).unwrap_or_else(|| panic!("{key} in {json}")) + pat.len()..];
    let rest = rest.trim_start_matches('"');
    rest.split(['"', ',', '}']).next().unwrap()
}

#[test]
fn query_matches_run_bit_for_bit_and_second_query_is_warm() {
    let mtx = fixture("fp");
    let server = Server::start("127.0.0.1:0", ServeConfig::default()).unwrap();
    server
        .preload(&[mtx.to_str().unwrap().to_string()])
        .unwrap();
    let addr = server.addr().to_string();

    for (algo, mask, phases) in [
        ("hash", "normal", "2"),
        ("msa", "normal", "1"),
        ("hash", "complement", "1"),
        ("inner", "normal", "2"),
        ("auto", "normal", "1"),
    ] {
        let run_text = dispatch(&[
            "run",
            "--algo",
            algo,
            "--mask",
            mask,
            "--phases",
            phases,
            "--reps",
            "1",
            "--no-cache",
            mtx.to_str().unwrap(),
        ])
        .unwrap();
        let query_text = dispatch(&[
            "query",
            "--connect",
            &addr,
            "mxm",
            "--dataset",
            "g",
            "--algo",
            algo,
            "--mask",
            mask,
            "--phases",
            phases,
        ])
        .unwrap();
        assert_eq!(
            run_fingerprint(&run_text),
            query_field(&query_text, "fingerprint"),
            "algo={algo} mask={mask} phases={phases}:\nrun:\n{run_text}\nquery:\n{query_text}"
        );
    }
}

#[test]
fn second_query_against_resident_dataset_reports_warm_pool() {
    let mtx = fixture("warm");
    let server = Server::start("127.0.0.1:0", ServeConfig::default()).unwrap();
    server
        .preload(&[mtx.to_str().unwrap().to_string()])
        .unwrap();
    let addr = server.addr().to_string();

    let q = [
        "query",
        "--connect",
        &addr,
        "mxm",
        "--dataset",
        "g",
        "--algo",
        "hash",
        "--phases",
        "2",
    ];
    let first = dispatch(&q).unwrap();
    let second = dispatch(&q).unwrap();
    assert_eq!(
        query_field(&first, "fingerprint"),
        query_field(&second, "fingerprint")
    );
    assert_eq!(
        query_field(&second, "misses"),
        "0",
        "second query must be allocation-free: {second}"
    );
    assert!(second.contains("\"warm\":true"), "{second}");
}
