//! # mspgemm-cli
//!
//! Library backing the `mxm` binary — the experiment driver that turns
//! this workspace from a library into a runnable system:
//!
//! * `mxm run` — one masked product on a matrix from disk, any scheme;
//! * `mxm suite` — the paper's TC / k-truss / BC sweeps over synthetic or
//!   on-disk datasets, with performance-profile and JSON output;
//! * `mxm convert` — `.mtx` ↔ `.msb` conversion;
//! * `mxm check` — generator/kernel self-check (CI smoke test);
//! * `mxm serve` / `mxm query` — the resident-dataset server and its
//!   scripting client (see `docs/SERVE_PROTOCOL.md`).
//!
//! All command logic lives in [`commands`] and [`servecmd`] as testable
//! functions over parsed arguments; `main` is a thin dispatcher.

#![warn(missing_docs)]

pub mod args;
pub mod commands;
pub mod servecmd;

use std::io::Write;

/// Usage text for `mxm` and `mxm help`.
pub const USAGE: &str = "\
mxm — masked sparse matrix-matrix product experiment driver

USAGE:
    mxm run [--algo msa|hash|mca|heap|heapdot|inner|auto|hybrid]
            [--mask normal|complement] [--phases 1|2]
            [--schedule static|guided|flops]
            [--threads N] [--parse-threads N] [--reps R] [--no-cache]
            [--mmap] [--pattern] [--trace out.json] <matrix.mtx|.msb>
        One masked product C = M (.*) A*A with M = pattern(A). The run
        report includes the ingest throughput (MB/s, entries/s), the
        load backend (heap vs zero-copy mmap), the row schedule, the
        kernel SIMD level (runtime-detected scalar/sse4.2/avx2;
        MXM_NO_SIMD=1 forces scalar), and the per-thread busy-time
        spread (max/mean). --mmap memory-maps a v2 .msb input (or fresh
        sidecar) instead of heap-copying it. --pattern drops values at
        load: unit values come from a process-wide shared arena and
        sidecars are written values-less (~half the bytes).
        --trace records phase-scoped spans (ingest, flop-prefix,
        symbolic, numeric, compaction, ...) to a chrome://tracing JSON
        file and appends a per-phase breakdown table to the report
        (see docs/OBSERVABILITY.md).

    mxm suite [--app tc|ktruss|bc] [--source synthetic|synthetic-full|DIR|FILE]
              [--schemes msa-1p,hash-2p,...] [--no-baselines]
              [--schedule static|guided|flops]
              [--reps R] [--threads N] [--parse-threads N] [--k K]
              [--batch B] [--tau-max X] [--json out.json] [--no-cache]
              [--mmap] [--pattern]
        Sweep an application over datasets x schemes; print the per-case
        table and Dolan-More profile, optionally write a JSON report
        (its exec block records the kernel SIMD level). A warm
        accumulator pool spans the whole sweep. --pattern loads on-disk
        datasets values-less (TC/k-truss/BC never read weights).

    Row schedules (--schedule, default guided): 'static' hands each thread
    one contiguous equal-row block; 'guided' lets threads claim decreasing
    chunks from a shared cursor; 'flops' places chunk boundaries by a
    prefix sum of per-row flops so each chunk carries near-equal work
    (best for power-law graphs). Output is identical across schedules.

    mxm convert [--parse-threads N] [--pattern] <in.mtx|.msb> <out.mtx|.msb>
        Convert between Matrix Market text and the .msb binary cache
        (v2: 8-byte-aligned sections, mmap-able; see docs/MSB_FORMAT.md).
        The output is written to a temp file and renamed atomically; a
        one-line summary reports dims, nnz, bytes, and format version.
        --pattern writes a values-less .msb (structure only, ~half the
        bytes); it loads with unit values from a process-wide shared
        arena — for structural workloads that never read weights.

    mxm check
        Generator/kernel self-check (used by CI).

    mxm serve [--listen ADDR] [--schedule static|guided|flops]
              [--parse-threads N] [--max-inflight N] [--queue-depth N]
              [--max-resident-bytes B] [--quarantine-after K]
              [--compact-after-nnz NNZ]
              [--fail SPEC] [--no-cache] [--mmap] [--pattern]
              [preload.mtx ...]
        Long-lived server (default 127.0.0.1:7654; 'unix:/path' for a
        Unix socket): datasets stay resident with pre-transposed
        operands, and requests run on the warm worker pool with shared
        accumulator scratch. Heavy requests (mxm, app) pass through a
        bounded admission queue feeding --max-inflight executor workers
        (default 2); when --queue-depth requests are already waiting
        (default 64) new ones are answered with a typed 'busy' error
        carrying a retry_after_ms hint instead of queueing unboundedly.
        Queued mxm requests that differ only by mask fuse into one
        kernel pass. Preload positional files at startup; serves until a
        'shutdown' request. --mmap keeps v2 .msb datasets resident
        zero-copy (stats reports each dataset's backend and mapped
        bytes). --pattern loads every dataset values-less: unit values
        come from one process-wide arena and 'list'/'stats' flag the
        dataset as pattern. The server self-heals: a kernel panic restarts the
        executor worker and answers 'exec_failed'; --quarantine-after K
        panics (default 3) against one dataset quarantine it until
        unload+load; --max-resident-bytes B evicts least-recently-used
        un-pinned datasets at load time (preloads are pinned; 0 =
        unlimited). Resident datasets are dynamic: the 'update' verb
        applies edge insert/delete batches into a delta overlay, and
        once the overlay outgrows --compact-after-nnz pending entries
        (default 4096) the next update compacts it into fresh CSR
        sections swapped in atomically (in-flight readers keep their
        snapshot; see docs/DYNAMIC_GRAPHS.md).
        --fail SPEC (or MXM_FAILPOINTS) arms named fault
        injection points for chaos drills, e.g.
        'kernel.numeric=10%err;serve.conn.drop=5%err' — armed points
        are listed by 'stats'. Protocol: docs/SERVE_PROTOCOL.md;
        capacity planning and failure modes: docs/SERVING_OPS.md.

    mxm query [--connect ADDR] [--retry N] <op> [op flags]
        One request against a running server. `stats`, `metrics` and
        `list` render human-readable tables by default; pass --json for
        the raw one-line JSON response (other ops always print JSON).
        ops: ping | list | stats | shutdown | load --path F [--name N]
             | unload --name N
             | metrics [--format json|prometheus]
             | mxm --dataset D [--algo A] [--mask M] [--phases P]
                   [--schedule S] [--threads T] [--reps R]
                   [--deadline-ms MS]
             | app --dataset D [--app tc|ktruss|bc] [--scheme S]
                   [--k K] [--batch B] [--threads T] [--deadline-ms MS]
             | update --dataset D [--insert 'i,j[,v];...']
                   [--delete 'i,j;...'] [--from-file F] [--compact]
             | raw --json '{...}'
        `update` edits a resident dataset in place: --insert/--delete
        take ;-separated 0-based edge lists, --from-file reads one op
        per line ('+ i j [v]' inserts, '- i j' deletes, '#' comments),
        and --compact forces the delta overlay into fresh CSR sections
        now. Within one batch a delete of a position beats an insert of
        the same position. After an update, `app tc` patches only the
        affected rows of its cached counts (the response says
        \"incremental\": true); k-truss and BC recompute fully.
        --retry N retries failed connects (every 500 ms) AND typed
        'busy' overload responses, backing off exponentially from the
        server's retry_after_ms hint (capped at 5 s per wait).
        --deadline-ms gives the request an execution budget measured
        from arrival; expired work is dropped at the next phase
        boundary and answered 'deadline_exceeded'.
        `metrics --format prometheus` prints the text exposition
        verbatim (pipe it to a scrape file; see docs/OBSERVABILITY.md).

Text matrices parse with the chunked parallel reader (--parse-threads N
pins the fan-out; 0 = all cores) and load through the .msb sidecar
cache: parsing big.mtx writes big.msb next to it, and later runs
deserialize the binary directly.
";

/// Value-taking flags per subcommand.
fn value_flags(cmd: &str) -> &'static [&'static str] {
    match cmd {
        "run" => &[
            "algo",
            "mask",
            "phases",
            "schedule",
            "threads",
            "parse-threads",
            "reps",
            "trace",
        ],
        "suite" => &[
            "app",
            "source",
            "schemes",
            "schedule",
            "json",
            "reps",
            "threads",
            "parse-threads",
            "k",
            "batch",
            "tau-max",
        ],
        "convert" => &["parse-threads"],
        "serve" => &[
            "listen",
            "schedule",
            "parse-threads",
            "max-inflight",
            "queue-depth",
            "max-resident-bytes",
            "quarantine-after",
            "compact-after-nnz",
            "fail",
        ],
        "query" => QUERY_VALUE_FLAGS,
        _ => &[],
    }
}

/// Value flags shared by every `mxm query` op. `--json` is NOT here: for
/// every op but `raw` it is a bare switch (print the raw response line);
/// only `raw` takes `--json '{...}'` as a value, which [`dispatch`]
/// special-cases by op name before parsing.
const QUERY_VALUE_FLAGS: &[&str] = &[
    "connect",
    "retry",
    "path",
    "name",
    "parse-threads",
    "dataset",
    "algo",
    "mask",
    "phases",
    "schedule",
    "threads",
    "reps",
    "app",
    "scheme",
    "k",
    "batch",
    "deadline-ms",
    "format",
    "insert",
    "delete",
    "from-file",
];

/// [`QUERY_VALUE_FLAGS`] plus `json` — the flag set for `mxm query raw`,
/// where `--json` carries the request body.
const QUERY_RAW_VALUE_FLAGS: &[&str] = &[
    "connect",
    "retry",
    "path",
    "name",
    "parse-threads",
    "dataset",
    "algo",
    "mask",
    "phases",
    "schedule",
    "threads",
    "reps",
    "app",
    "scheme",
    "k",
    "batch",
    "deadline-ms",
    "format",
    "insert",
    "delete",
    "from-file",
    "json",
];

/// Bare switches per subcommand. Anything else is a typo'd flag — reject
/// it rather than silently running without the intended option.
fn known_switches(cmd: &str) -> &'static [&'static str] {
    match cmd {
        "run" => &["no-cache", "mmap", "pattern"],
        "suite" => &["no-cache", "no-baselines", "mmap", "pattern"],
        "convert" => &["pattern"],
        "serve" => &["no-cache", "mmap", "pattern"],
        "query" => &["no-cache", "mmap", "json", "compact", "pattern"],
        _ => &[],
    }
}

/// Positional-argument arity per subcommand (`min..=max`).
fn positional_arity(cmd: &str) -> std::ops::RangeInclusive<usize> {
    match cmd {
        "run" => 1..=1,
        "convert" => 2..=2,
        "serve" => 0..=usize::MAX, // positionals are preload files
        "query" => 1..=1,          // the op
        _ => 0..=0,
    }
}

/// Dispatch a full argv (without the binary name). Returns an error
/// message for exit-code-1 failures.
pub fn dispatch(argv: &[String], out: &mut impl Write) -> Result<(), String> {
    let Some(cmd) = argv.first() else {
        return Err(USAGE.to_string());
    };
    let rest = &argv[1..];
    // `query raw` is the one spot where --json takes a value (the request
    // body); everywhere else in `query` it is the raw-output switch.
    let vflags = if cmd == "query" && rest.iter().any(|a| a == "raw") {
        QUERY_RAW_VALUE_FLAGS
    } else {
        value_flags(cmd)
    };
    let parsed = args::parse(rest, vflags)?;
    if matches!(
        cmd.as_str(),
        "run" | "suite" | "convert" | "check" | "serve" | "query"
    ) {
        for s in &parsed.switches {
            if !known_switches(cmd).contains(&s.as_str()) {
                return Err(format!(
                    "unknown flag --{s} for `mxm {cmd}` (see `mxm help`)"
                ));
            }
        }
        if !positional_arity(cmd).contains(&parsed.positional.len()) {
            return Err(format!(
                "`mxm {cmd}` takes {:?} positional argument(s), got {}: {:?} (see `mxm help`)",
                positional_arity(cmd),
                parsed.positional.len(),
                parsed.positional
            ));
        }
    }
    match cmd.as_str() {
        "run" => commands::cmd_run(&parsed, out),
        "suite" => commands::cmd_suite(&parsed, out),
        "convert" => commands::cmd_convert(&parsed, out),
        "check" => commands::cmd_check(out),
        "serve" => servecmd::cmd_serve(&parsed, out),
        "query" => servecmd::cmd_query(&parsed, out),
        "help" | "--help" | "-h" => writeln!(out, "{USAGE}").map_err(|e| e.to_string()),
        other => Err(format!("unknown command '{other}'\n\n{USAGE}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn no_args_prints_usage_as_error() {
        let e = dispatch(&[], &mut Vec::new()).unwrap_err();
        assert!(e.contains("USAGE"));
    }

    #[test]
    fn unknown_command_rejected() {
        let e = dispatch(&sv(&["frobnicate"]), &mut Vec::new()).unwrap_err();
        assert!(e.contains("unknown command"));
    }

    #[test]
    fn help_succeeds() {
        let mut out = Vec::new();
        dispatch(&sv(&["help"]), &mut out).unwrap();
        assert!(String::from_utf8(out).unwrap().contains("mxm suite"));
    }

    #[test]
    fn check_via_dispatch() {
        let mut out = Vec::new();
        dispatch(&sv(&["check"]), &mut out).unwrap();
    }

    #[test]
    fn convert_accepts_parse_threads_via_dispatch() {
        let dir = std::env::temp_dir().join("mxm_cli_dispatch_convert");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let mtx = dir.join("g.mtx");
        let msb = dir.join("g.msb");
        let g = mspgemm_gen::er_symmetric(40, 4, 3);
        mspgemm_io::mtx::write_mtx_file(&mtx, &g).unwrap();
        let mut out = Vec::new();
        dispatch(
            &sv(&[
                "convert",
                "--parse-threads",
                "2",
                mtx.to_str().unwrap(),
                msb.to_str().unwrap(),
            ]),
            &mut out,
        )
        .unwrap();
        assert_eq!(mspgemm_io::load_matrix(&msb).unwrap(), g);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn typod_switch_rejected() {
        // `--json-out` (typo for --json) must not silently run the sweep
        // without a report.
        let e = dispatch(
            &sv(&["suite", "--json-out", "report.json"]),
            &mut Vec::new(),
        )
        .unwrap_err();
        assert!(e.contains("unknown flag --json-out"), "{e}");
    }

    #[test]
    fn stray_positionals_rejected() {
        // `--repz 3` (typo for --reps) turns "3" into a positional; the
        // unknown switch is caught first.
        let e = dispatch(&sv(&["run", "--repz", "3", "g.mtx"]), &mut Vec::new()).unwrap_err();
        assert!(e.contains("unknown flag --repz"), "{e}");
        // Too many positionals on convert.
        let e = dispatch(
            &sv(&["convert", "a.mtx", "b.msb", "c.mtx"]),
            &mut Vec::new(),
        )
        .unwrap_err();
        assert!(e.contains("positional"), "{e}");
        // Suite takes none.
        let e = dispatch(&sv(&["suite", "stray.mtx"]), &mut Vec::new()).unwrap_err();
        assert!(e.contains("positional"), "{e}");
    }
}
