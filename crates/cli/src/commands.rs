//! The three `mxm` subcommands: `run`, `suite`, `convert`.
//!
//! Every command is a plain function over [`Parsed`] arguments returning
//! `Result<(), String>`, so the test suite drives them without spawning
//! processes; `main` only maps errors to exit codes.

use crate::args::Parsed;
use masked_spgemm::{
    masked_mxm_with_opts, Algorithm, ExecOpts, ExecStats, MaskMode, Phases, RowSchedule, WsPool,
};
use mspgemm_gen::SuiteGraph;
use mspgemm_graph::scheme::Scheme;
use mspgemm_graph::{tricount, App};
use mspgemm_harness::report::{DatasetInfo, ExecSummary, SuiteReport, Table};
use mspgemm_harness::runner::{bc_runs, ktruss_runs, tc_runs};
use mspgemm_harness::{
    busy_spread, default_taus, entries_per_s, gflops, mb_per_s, performance_profile, time_best,
    with_threads,
};
use mspgemm_io::{
    load_matrix_opts, load_matrix_with, save_matrix, save_matrix_pattern, CachePolicy,
    DatasetSource, Format, IngestReport, LoadOpts,
};
use mspgemm_sparse::semiring::PlusTimesF64;
use std::io::Write;

/// Parse a scheme label (`msa-1p`, `Hash-2P`, `ss:saxpy`, ...) as the
/// suite's `--schemes` filter spells it — [`Scheme`]'s `FromStr`, which
/// the serve protocol shares.
pub fn parse_scheme(s: &str) -> Result<Scheme, String> {
    s.parse()
}

fn cache_policy(p: &Parsed) -> CachePolicy {
    if p.switch("no-cache") {
        CachePolicy::Off
    } else {
        CachePolicy::ReadWrite
    }
}

/// The full load options one command invocation pins: cache policy,
/// parse fan-out, the `--mmap` zero-copy preference, and the
/// `--pattern` values-less loading mode.
fn load_opts(p: &Parsed) -> Result<LoadOpts, String> {
    Ok(LoadOpts {
        policy: cache_policy(p),
        parse_threads: p.flag_parse("parse-threads", 0usize)?,
        mmap: p.switch("mmap"),
        pattern: p.switch("pattern"),
    })
}

/// The ingest-throughput report line: what moved, how fast, whether the
/// text parse or the binary sidecar served it, how the sections are
/// backed (heap copies vs zero-copy mmap), and whether values were
/// dropped in favour of the shared unit arena (pattern mode).
fn ingest_line(r: &IngestReport) -> String {
    format!(
        "ingest   : {} bytes in {:.6} s ({:.1} MB/s, {:.0} entries/s, {:?}, backend {}{})",
        r.bytes,
        r.seconds,
        mb_per_s(r.bytes, r.seconds),
        entries_per_s(r.entries, r.seconds),
        r.outcome,
        r.backend.name(),
        if r.pattern { ", pattern" } else { "" }
    )
}

/// The kernel SIMD disclosure line shared by `run` (the serve `ping` and
/// `stats` carry the same field): what the probe/accumulate inner loops
/// actually ran at on this machine.
fn simd_line() -> String {
    format!(
        "simd     : {} (runtime-detected; MXM_NO_SIMD=1 forces scalar)",
        masked_spgemm::simd::level().name()
    )
}

/// `mxm run`: one masked product `C = M ⊙ (A·A)` (or `¬M ⊙ (A·A)`) where
/// `M` is the pattern of `A` — the paper's single-input experiment shape.
pub fn cmd_run(p: &Parsed, out: &mut impl Write) -> Result<(), String> {
    let path = p
        .positional
        .first()
        .ok_or("usage: mxm run [--algo A] [--mask normal|complement] [--phases 1|2] [--schedule static|guided|flops] [--threads N] [--parse-threads N] [--reps R] [--mmap] <matrix.mtx|.msb>")?;
    let algo: Algorithm = p.flag("algo").unwrap_or("auto").parse()?;
    let mode: MaskMode = p.flag("mask").unwrap_or("normal").parse()?;
    let phases: Phases = p.flag("phases").unwrap_or("1").parse()?;
    let schedule: RowSchedule = p.flag("schedule").unwrap_or("guided").parse()?;
    let threads = p.flag_parse("threads", 0usize)?;
    let reps = p.flag_parse("reps", 3usize)?.max(1);

    // --trace flips the process-global tracer on before the load, so the
    // ingest span is captured alongside the kernel phases. Stale events
    // from an earlier traced run in the same process are dropped first,
    // and the guard turns tracing back off even on an error return.
    let trace_path = p.flag("trace");
    let _trace_guard = trace_path.map(|_| {
        let tracer = mspgemm_obs::trace::global();
        tracer.drain();
        tracer.set_enabled(true);
        TracerOff
    });

    let (a, ingest) = load_matrix_opts(path, &load_opts(p)?).map_err(|e| e.to_string())?;
    if a.nrows() != a.ncols() {
        return Err(format!(
            "mxm run squares its input (C = M ⊙ A·A); {path} is {}x{}",
            a.nrows(),
            a.ncols()
        ));
    }
    writeln!(out, "matrix   : {path} ({:?})", ingest.outcome).map_err(|e| e.to_string())?;
    writeln!(
        out,
        "shape    : {}x{}, nnz {}",
        a.nrows(),
        a.ncols(),
        a.nnz()
    )
    .map_err(|e| e.to_string())?;
    writeln!(out, "{}", ingest_line(&ingest)).map_err(|e| e.to_string())?;
    let mask = a.pattern();
    let flops = 2 * a.flops_with(&a);

    // Warm accumulator pool + busy-time recorder: steady-state reps reuse
    // scratch, and the recorder feeds the load-balance report line.
    let pool = WsPool::new();
    let stats = ExecStats::new();
    let opts = ExecOpts {
        schedule,
        ws_pool: Some(&pool),
        stats: Some(&stats),
        deadline: None,
    };
    let work = || {
        let (secs, c) = time_best(reps, || {
            masked_mxm_with_opts::<PlusTimesF64, ()>(&mask, &a, &a, algo, mode, phases, &opts)
        });
        (secs, c)
    };
    let (secs, c) = if threads > 0 {
        with_threads(threads, work)
    } else {
        work()
    };
    let c = c.map_err(|e| e.to_string())?;

    writeln!(
        out,
        "scheme   : {} / {:?} / {:?}{}",
        algo.name(),
        mode,
        phases,
        if threads > 0 {
            format!(" / {threads} threads")
        } else {
            String::new()
        }
    )
    .map_err(|e| e.to_string())?;
    match busy_spread(&stats.busy_seconds()) {
        Some(sp) => writeln!(
            out,
            "schedule : {} (busy max/mean {:.2} over {} threads, pool hits {}/{} takes)",
            schedule.name(),
            sp.ratio(),
            sp.threads,
            pool.hits(),
            pool.hits() + pool.misses(),
        ),
        // Pull-based Inner records nothing — it has no row-push drive.
        None => writeln!(out, "schedule : {} (no push drives timed)", schedule.name()),
    }
    .map_err(|e| e.to_string())?;
    writeln!(out, "{}", simd_line()).map_err(|e| e.to_string())?;
    writeln!(
        out,
        "output   : nnz {}, fingerprint {:016x}",
        c.nnz(),
        mspgemm_harness::csr_fingerprint(&c)
    )
    .map_err(|e| e.to_string())?;
    writeln!(out, "time     : {:.6} s (best of {reps})", secs).map_err(|e| e.to_string())?;
    writeln!(
        out,
        "gflops   : {:.3} (unmasked-product convention)",
        gflops(flops, secs)
    )
    .map_err(|e| e.to_string())?;
    if let Some(path) = trace_path {
        write_trace_report(path, out)?;
    }
    Ok(())
}

/// Drop guard: disables the global tracer when a traced `cmd_run` exits,
/// successfully or not, so spans never leak into untraced work.
struct TracerOff;

impl Drop for TracerOff {
    fn drop(&mut self) {
        mspgemm_obs::trace::global().set_enabled(false);
    }
}

/// Flush the global tracer to a chrome://tracing JSON file and append
/// the per-phase breakdown table to the run report.
fn write_trace_report(path: &str, out: &mut impl Write) -> Result<(), String> {
    let tracer = mspgemm_obs::trace::global();
    tracer.set_enabled(false);
    let events = tracer.drain();
    std::fs::write(path, mspgemm_obs::trace::chrome_trace_json(&events))
        .map_err(|e| format!("writing trace {path}: {e}"))?;
    let mut table = Table::new(&["phase", "spans", "total_ms", "max_ms"]);
    for ph in mspgemm_obs::trace::phase_totals(&events) {
        table.row(&[
            ph.name.to_string(),
            ph.count.to_string(),
            format!("{:.3}", ph.total_us as f64 / 1e3),
            format!("{:.3}", ph.max_us as f64 / 1e3),
        ]);
    }
    writeln!(out, "\nphase breakdown (all reps):\n{}", table.to_text())
        .map_err(|e| e.to_string())?;
    writeln!(
        out,
        "trace    : {path} ({} spans, open via chrome://tracing or ui.perfetto.dev)",
        events.len()
    )
    .map_err(|e| e.to_string())?;
    Ok(())
}

fn scheme_list(p: &Parsed, app: App) -> Result<Vec<Scheme>, String> {
    if let Some(filter) = p.flag("schemes") {
        return filter.split(',').map(|s| parse_scheme(s.trim())).collect();
    }
    let mut schemes = if app.needs_complement() {
        Scheme::all_ours_complement()
    } else {
        Scheme::all_ours()
    };
    if !p.switch("no-baselines") {
        schemes.push(Scheme::SsSaxpy);
        schemes.push(Scheme::SsDot);
    }
    Ok(schemes)
}

/// `mxm suite`: sweep an application over datasets × schemes, print the
/// per-case table and the Dolan-Moré profile, optionally write JSON.
pub fn cmd_suite(p: &Parsed, out: &mut impl Write) -> Result<(), String> {
    let app: App = p.flag("app").unwrap_or("tc").parse()?;
    let source = DatasetSource::parse(p.flag("source").unwrap_or("synthetic"));
    let schedule: RowSchedule = p.flag("schedule").unwrap_or("guided").parse()?;
    let reps = p.flag_parse("reps", 1usize)?.max(1);
    let threads = p.flag_parse("threads", 0usize)?;
    let k = p.flag_parse("k", 4usize)?;
    let batch = p.flag_parse("batch", 16usize)?;
    let tau_max = p.flag_parse("tau-max", 2.4f64)?;

    let graphs = source
        .load_opts(&load_opts(p)?)
        .map_err(|e| e.to_string())?;
    let schemes = scheme_list(p, app)?;
    writeln!(
        out,
        "== mxm suite: app={} datasets={} schemes={} reps={reps} schedule={} ==",
        app.name(),
        graphs.len(),
        schemes.len(),
        schedule.name(),
    )
    .map_err(|e| e.to_string())?;

    // One pool + recorder for the whole sweep: workspaces survive across
    // schemes, datasets and repetitions.
    let pool = WsPool::new();
    let stats = ExecStats::new();
    let opts = ExecOpts {
        schedule,
        ws_pool: Some(&pool),
        stats: Some(&stats),
        deadline: None,
    };
    let sweep = || match app {
        App::Tc => tc_runs(&graphs, &schemes, reps, &opts),
        App::Ktruss => ktruss_runs(&graphs, &schemes, k, reps, &opts),
        App::Bc => bc_runs(&graphs, &schemes, batch, reps, &opts),
    };
    let runs = if threads > 0 {
        with_threads(threads, sweep)
    } else {
        sweep()
    };
    // The same balance/pool summary feeds both the console line and the
    // JSON report's `exec` block.
    let exec = busy_spread(&stats.busy_seconds()).map(|sp| ExecSummary {
        busy_max_over_mean: sp.ratio(),
        busy_threads: sp.threads,
        pool_hits: pool.hits(),
        pool_misses: pool.misses(),
        simd: masked_spgemm::simd::level().name().to_string(),
    });
    if let Some(e) = &exec {
        writeln!(
            out,
            "balance: busy max/mean {:.2} over {} threads; pool hits {}/{} takes",
            e.busy_max_over_mean,
            e.busy_threads,
            e.pool_hits,
            e.pool_hits + e.pool_misses,
        )
        .map_err(|e| e.to_string())?;
    }

    // Per-case seconds table: dataset rows × scheme columns.
    let mut headers: Vec<&str> = vec!["dataset", "n", "nnz"];
    let names: Vec<String> = runs.iter().map(|r| r.name.clone()).collect();
    headers.extend(names.iter().map(|s| s.as_str()));
    let mut table = Table::new(&headers);
    for (gi, g) in graphs.iter().enumerate() {
        let mut row = vec![
            g.name.clone(),
            g.adj.nrows().to_string(),
            g.adj.nnz().to_string(),
        ];
        for r in &runs {
            row.push(match r.seconds[gi] {
                Some(s) => format!("{s:.6}"),
                None => "-".into(),
            });
        }
        table.row(&row);
    }
    writeln!(out, "\n{}", table.to_text()).map_err(|e| e.to_string())?;

    // The paper's comparison device.
    let profile = performance_profile(&runs, &default_taus(tau_max, 0.2));
    let mut ptable = Table::new(
        &std::iter::once("tau")
            .chain(names.iter().map(|s| s.as_str()))
            .collect::<Vec<_>>(),
    );
    for (ti, tau) in profile.taus.iter().enumerate() {
        let mut row = vec![format!("{tau:.1}")];
        for (_, fr) in &profile.curves {
            row.push(format!("{:.2}", fr[ti]));
        }
        ptable.row(&row);
    }
    writeln!(
        out,
        "performance profile (fraction of cases within tau of best):\n{}",
        ptable.to_text()
    )
    .map_err(|e| e.to_string())?;

    if let Some(json_path) = p.flag("json") {
        let report = suite_report(app, &graphs, &runs, exec, reps, threads, k, batch, schedule);
        std::fs::write(json_path, report.to_json())
            .map_err(|e| format!("writing {json_path}: {e}"))?;
        writeln!(out, "json report: {json_path}").map_err(|e| e.to_string())?;
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn suite_report(
    app: App,
    graphs: &[SuiteGraph],
    runs: &[mspgemm_harness::SchemeRuns],
    exec: Option<ExecSummary>,
    reps: usize,
    threads: usize,
    k: usize,
    batch: usize,
    schedule: RowSchedule,
) -> SuiteReport {
    let mut params = vec![
        ("reps".to_string(), reps.to_string()),
        ("schedule".to_string(), schedule.name().to_string()),
    ];
    if threads > 0 {
        params.push(("threads".into(), threads.to_string()));
    }
    match app {
        App::Ktruss => params.push(("k".into(), k.to_string())),
        App::Bc => params.push(("batch".into(), batch.to_string())),
        App::Tc => {}
    }
    SuiteReport {
        app: app.name().to_string(),
        params,
        exec,
        datasets: graphs
            .iter()
            .map(|g| DatasetInfo {
                name: g.name.clone(),
                nrows: g.adj.nrows(),
                nnz: g.adj.nnz(),
            })
            .collect(),
        runs: runs.to_vec(),
    }
}

/// `mxm convert`: read one matrix, write it in the format the output
/// extension names (`.mtx` ↔ `.msb`). The write goes through a temp
/// file + atomic rename, so an interrupted convert never leaves a
/// truncated output behind for the sidecar cache to trust. Prints a
/// one-line summary: dims, nnz, bytes written, and the output format
/// (`.msb` includes the version — v2, the mmap-able aligned layout).
/// `--pattern` drops the values section (`.msb` output only): the file
/// stores structure alone at roughly half the bytes, and loads with
/// unit values served from the process-wide arena.
pub fn cmd_convert(p: &Parsed, out: &mut impl Write) -> Result<(), String> {
    let [src, dst] = p.positional.as_slice() else {
        return Err(
            "usage: mxm convert [--parse-threads N] [--pattern] <in.mtx|.msb> <out.mtx|.msb>"
                .into(),
        );
    };
    let parse_threads = p.flag_parse("parse-threads", 0usize)?;
    let pattern = p.switch("pattern");
    let a = load_matrix_with(src, parse_threads).map_err(|e| format!("{src}: {e}"))?;
    if pattern {
        save_matrix_pattern(dst, &a).map_err(|e| format!("{dst}: {e}"))?;
    } else {
        save_matrix(dst, &a).map_err(|e| format!("{dst}: {e}"))?;
    }
    let bytes = std::fs::metadata(dst).map(|m| m.len()).unwrap_or(0);
    let format = match Format::from_path(std::path::Path::new(dst)) {
        Ok(Format::Msb) => format!(
            "msb v{}{}",
            mspgemm_io::msb::MSB_VERSION,
            if pattern { ", pattern" } else { "" }
        ),
        _ => "mtx text".to_string(),
    };
    writeln!(
        out,
        "{src} -> {dst}: {}x{}, nnz {}, {bytes} bytes written ({format})",
        a.nrows(),
        a.ncols(),
        a.nnz()
    )
    .map_err(|e| e.to_string())?;
    Ok(())
}

/// One-shot verification run used by `mxm check` (and the CI smoke test):
/// counts triangles on a small generated graph with two schemes and
/// cross-checks them.
pub fn cmd_check(out: &mut impl Write) -> Result<(), String> {
    let g = mspgemm_gen::er_symmetric(500, 8, 42);
    let a = tricount::triangle_count(&g, Scheme::Ours(Algorithm::Msa, Phases::One));
    let b = tricount::triangle_count(&g, Scheme::Ours(Algorithm::Hash, Phases::Two));
    if a.triangles != b.triangles {
        return Err(format!(
            "self-check failed: MSA {} vs Hash {}",
            a.triangles, b.triangles
        ));
    }
    writeln!(
        out,
        "self-check ok: {} triangles, schemes agree",
        a.triangles
    )
    .map_err(|e| e.to_string())?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse;
    use std::path::PathBuf;

    fn sv(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    fn tempdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("mxm_cli_{tag}"));
        std::fs::remove_dir_all(&d).ok();
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn write_small_graph(path: &std::path::Path) {
        let g = mspgemm_gen::er_symmetric(60, 6, 7);
        mspgemm_io::mtx::write_mtx_file(path, &g).unwrap();
    }

    #[test]
    fn parse_scheme_labels() {
        assert_eq!(
            parse_scheme("msa-1p").unwrap(),
            Scheme::Ours(Algorithm::Msa, Phases::One)
        );
        assert_eq!(
            parse_scheme("HeapDot-2P").unwrap(),
            Scheme::Ours(Algorithm::HeapDot, Phases::Two)
        );
        assert_eq!(
            parse_scheme("hash").unwrap(),
            Scheme::Ours(Algorithm::Hash, Phases::One)
        );
        assert_eq!(parse_scheme("ss:saxpy").unwrap(), Scheme::SsSaxpy);
        assert!(parse_scheme("nope-3p").is_err());
    }

    #[test]
    fn run_command_end_to_end() {
        let dir = tempdir("run");
        let mtx = dir.join("g.mtx");
        write_small_graph(&mtx);
        let p = parse(
            &sv(&[
                "--algo",
                "hash",
                "--mask",
                "complement",
                "--phases",
                "2",
                "--reps",
                "1",
                mtx.to_str().unwrap(),
            ]),
            &["algo", "mask", "phases", "threads", "reps"],
        )
        .unwrap();
        let mut out = Vec::new();
        cmd_run(&p, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Hash"), "{text}");
        assert!(text.contains("gflops"), "{text}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn run_reports_ingest_throughput_with_parse_threads() {
        let dir = tempdir("run_ingest");
        let mtx = dir.join("g.mtx");
        write_small_graph(&mtx);
        let p = parse(
            &sv(&[
                "--algo",
                "msa",
                "--reps",
                "1",
                "--parse-threads",
                "3",
                "--no-cache",
                mtx.to_str().unwrap(),
            ]),
            &["algo", "mask", "phases", "threads", "parse-threads", "reps"],
        )
        .unwrap();
        let mut out = Vec::new();
        cmd_run(&p, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("ingest"), "{text}");
        assert!(text.contains("MB/s"), "{text}");
        assert!(text.contains("entries/s"), "{text}");
        assert!(text.contains("Parsed"), "{text}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn run_reports_schedule_and_balance() {
        let dir = tempdir("run_sched");
        let mtx = dir.join("g.mtx");
        write_small_graph(&mtx);
        for sched in ["static", "guided", "flops"] {
            let p = parse(
                &sv(&[
                    "--algo",
                    "hash",
                    "--schedule",
                    sched,
                    "--reps",
                    "1",
                    "--no-cache",
                    mtx.to_str().unwrap(),
                ]),
                &["algo", "mask", "phases", "schedule", "threads", "reps"],
            )
            .unwrap();
            let mut out = Vec::new();
            cmd_run(&p, &mut out).unwrap();
            let text = String::from_utf8(out).unwrap();
            assert!(text.contains(&format!("schedule : {sched}")), "{text}");
            assert!(text.contains("busy max/mean"), "{text}");
            assert!(text.contains("pool hits"), "{text}");
        }
        // A typo'd schedule is rejected up front.
        let p = parse(
            &sv(&["--schedule", "dynamic", mtx.to_str().unwrap()]),
            &["schedule"],
        )
        .unwrap();
        let err = cmd_run(&p, &mut Vec::new()).unwrap_err();
        assert!(err.contains("unknown schedule"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn run_trace_writes_chrome_json_and_phase_table() {
        let dir = tempdir("run_trace");
        let mtx = dir.join("g.mtx");
        write_small_graph(&mtx);
        let trace = dir.join("trace.json");
        let p = parse(
            &sv(&[
                "--algo",
                "hash",
                "--phases",
                "2",
                "--reps",
                "1",
                "--no-cache",
                "--trace",
                trace.to_str().unwrap(),
                mtx.to_str().unwrap(),
            ]),
            &["algo", "mask", "phases", "threads", "reps", "trace"],
        )
        .unwrap();
        let mut out = Vec::new();
        cmd_run(&p, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("phase breakdown"), "{text}");
        assert!(text.contains("symbolic"), "{text}");
        assert!(text.contains("numeric"), "{text}");
        assert!(text.contains("trace    :"), "{text}");

        let j = std::fs::read_to_string(&trace).unwrap();
        assert!(j.starts_with("{\"traceEvents\":["), "{j}");
        assert!(j.contains("\"ingest\""), "ingest span must be covered: {j}");
        assert!(j.contains("\"numeric\""), "{j}");
        assert!(j.contains("\"ph\":\"X\""), "{j}");
        // Tracing is off again after the traced run.
        assert!(!mspgemm_obs::trace::global().is_enabled());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn suite_json_carries_exec_summary() {
        let dir = tempdir("suite_exec");
        write_small_graph(&dir.join("g.mtx"));
        let json = dir.join("report.json");
        let p = parse(
            &sv(&[
                "--app",
                "tc",
                "--source",
                dir.to_str().unwrap(),
                "--schemes",
                "hash-1p",
                "--json",
                json.to_str().unwrap(),
            ]),
            &["app", "source", "schemes", "json"],
        )
        .unwrap();
        cmd_suite(&p, &mut Vec::new()).unwrap();
        let j = std::fs::read_to_string(&json).unwrap();
        assert!(j.contains("\"exec\""), "{j}");
        assert!(j.contains("\"busy_max_over_mean\""), "{j}");
        assert!(j.contains("\"hit_rate\""), "{j}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn suite_accepts_schedule_flag() {
        let dir = tempdir("suite_sched");
        write_small_graph(&dir.join("g.mtx"));
        let json = dir.join("report.json");
        let p = parse(
            &sv(&[
                "--app",
                "tc",
                "--source",
                dir.to_str().unwrap(),
                "--schemes",
                "msa-1p",
                "--schedule",
                "flops",
                "--json",
                json.to_str().unwrap(),
            ]),
            &["app", "source", "schemes", "schedule", "json"],
        )
        .unwrap();
        let mut out = Vec::new();
        cmd_suite(&p, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("schedule=flops"), "{text}");
        assert!(text.contains("pool hits"), "{text}");
        let j = std::fs::read_to_string(&json).unwrap();
        assert!(j.contains("\"schedule\": \"flops\""), "{j}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn run_rejects_mca_complement() {
        let dir = tempdir("run_mca");
        let mtx = dir.join("g.mtx");
        write_small_graph(&mtx);
        let p = parse(
            &sv(&[
                "--algo",
                "mca",
                "--mask",
                "complement",
                mtx.to_str().unwrap(),
            ]),
            &["algo", "mask", "phases", "threads", "reps"],
        )
        .unwrap();
        let mut out = Vec::new();
        let err = cmd_run(&p, &mut out).unwrap_err();
        assert!(err.contains("complemented"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn suite_command_on_directory_with_json() {
        let dir = tempdir("suite");
        write_small_graph(&dir.join("g1.mtx"));
        write_small_graph(&dir.join("g2.mtx"));
        let json = dir.join("report.json");
        let p = parse(
            &sv(&[
                "--app",
                "tc",
                "--source",
                dir.to_str().unwrap(),
                "--schemes",
                "msa-1p,hash-2p",
                "--json",
                json.to_str().unwrap(),
            ]),
            &[
                "app", "source", "schemes", "json", "reps", "threads", "k", "batch", "tau-max",
            ],
        )
        .unwrap();
        let mut out = Vec::new();
        cmd_suite(&p, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("g1") && text.contains("g2"), "{text}");
        assert!(text.contains("performance profile"), "{text}");
        let j = std::fs::read_to_string(&json).unwrap();
        assert!(j.contains("\"app\": \"tc\""));
        assert!(j.contains("MSA-1P"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn suite_bc_filters_complement() {
        let dir = tempdir("suite_bc");
        write_small_graph(&dir.join("g.mtx"));
        let p = parse(
            &sv(&[
                "--app",
                "bc",
                "--source",
                dir.to_str().unwrap(),
                "--schemes",
                "msa-1p",
                "--batch",
                "4",
            ]),
            &[
                "app", "source", "schemes", "json", "reps", "threads", "k", "batch", "tau-max",
            ],
        )
        .unwrap();
        let mut out = Vec::new();
        cmd_suite(&p, &mut out).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn convert_roundtrips_both_ways() {
        let dir = tempdir("convert");
        let mtx = dir.join("g.mtx");
        let msb = dir.join("g_cache.msb");
        let back = dir.join("g_back.mtx");
        write_small_graph(&mtx);
        let flags: &[&str] = &[];

        let p = parse(&sv(&[mtx.to_str().unwrap(), msb.to_str().unwrap()]), flags).unwrap();
        let mut out = Vec::new();
        cmd_convert(&p, &mut out).unwrap();

        let p = parse(&sv(&[msb.to_str().unwrap(), back.to_str().unwrap()]), flags).unwrap();
        cmd_convert(&p, &mut Vec::new()).unwrap();

        let a = mspgemm_io::load_matrix(&mtx).unwrap();
        let b = mspgemm_io::load_matrix(&msb).unwrap();
        let c = mspgemm_io::load_matrix(&back).unwrap();
        assert_eq!(a, b);
        assert_eq!(a, c);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn convert_usage_errors() {
        let p = parse(&sv(&["only_one.mtx"]), &[]).unwrap();
        assert!(cmd_convert(&p, &mut Vec::new()).is_err());
    }

    #[test]
    fn check_command_agrees() {
        let mut out = Vec::new();
        cmd_check(&mut out).unwrap();
        assert!(String::from_utf8(out).unwrap().contains("self-check ok"));
    }
}
