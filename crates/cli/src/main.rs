//! `mxm` — the Masked SpGEMM experiment driver. See `mxm help`.

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut stdout = std::io::stdout();
    match mspgemm_cli::dispatch(&argv, &mut stdout) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
