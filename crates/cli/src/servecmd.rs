//! The serving subcommands: `mxm serve` (run the resident-dataset server)
//! and `mxm query` (script one protocol request against it).
//!
//! `serve` binds the address, preloads any datasets named as positional
//! arguments, prints one `listening on <addr>` line, and parks until a
//! `shutdown` request arrives. `query` builds the request object from
//! flags (so shell scripts never hand-assemble JSON), sends it, prints
//! the response as one JSON line, and exits non-zero on a protocol
//! error — which makes it usable directly in CI smoke tests.

use crate::args::Parsed;
use masked_spgemm::RowSchedule;
use mspgemm_harness::report::Table;
use mspgemm_io::CachePolicy;
use mspgemm_serve::{client, Client, Json, ServeConfig, Server};
use std::io::Write;

/// `mxm serve`: start the server, preload datasets, serve until a
/// `shutdown` request.
pub fn cmd_serve(p: &Parsed, out: &mut impl Write) -> Result<(), String> {
    let listen = p.flag("listen").unwrap_or("127.0.0.1:7654");
    let schedule: RowSchedule = p.flag("schedule").unwrap_or("guided").parse()?;
    let parse_threads = p.flag_parse("parse-threads", 0usize)?;
    let cache = if p.switch("no-cache") {
        CachePolicy::Off
    } else {
        CachePolicy::ReadWrite
    };
    let defaults = ServeConfig::default();
    let max_inflight = p.flag_parse("max-inflight", defaults.max_inflight)?;
    let queue_depth = p.flag_parse("queue-depth", defaults.queue_depth)?;
    let max_resident_bytes = p.flag_parse("max-resident-bytes", defaults.max_resident_bytes)?;
    let quarantine_after = p.flag_parse("quarantine-after", defaults.quarantine_after)?;
    let compact_after_nnz = p.flag_parse("compact-after-nnz", defaults.compact_after_nnz)?;
    // Fault injection for chaos drills: `--fail` wins over the
    // `MXM_FAILPOINTS` environment; both use the same spec grammar
    // (`name=[P%][N*]kind[(arg)];...`). The `stats` verb lists whatever
    // is armed, so an injected fault is never mistaken for a real one.
    let fail_spec = p
        .flag("fail")
        .map(str::to_string)
        .or_else(|| std::env::var("MXM_FAILPOINTS").ok());
    if let Some(spec) = &fail_spec {
        mspgemm_fault::configure(spec).map_err(|e| format!("failpoint spec '{spec}': {e}"))?;
        if !spec.trim().is_empty() {
            writeln!(out, "failpoints armed: {spec}").map_err(|e| e.to_string())?;
        }
    }
    let server = Server::start(
        listen,
        ServeConfig {
            schedule,
            parse_threads,
            cache,
            mmap: p.switch("mmap"),
            pattern: p.switch("pattern"),
            max_inflight,
            queue_depth,
            max_resident_bytes,
            quarantine_after,
            compact_after_nnz,
        },
    )?;
    for (path, name) in p.positional.iter().zip(server.preload(&p.positional)?) {
        writeln!(out, "preloaded {name} from {path}").map_err(|e| e.to_string())?;
    }
    writeln!(out, "listening on {}", server.addr()).map_err(|e| e.to_string())?;
    // The line must reach a piped/backgrounded log before we park.
    out.flush().map_err(|e| e.to_string())?;
    server.wait();
    writeln!(out, "server stopped").map_err(|e| e.to_string())?;
    Ok(())
}

const QUERY_USAGE: &str = "usage: mxm query [--connect ADDR] [--retry N] <op> [op flags]\n\
    ops: ping | list | stats | shutdown\n\
         metrics [--format json|prometheus]\n\
         load --path FILE [--name N] [--parse-threads N] [--no-cache] [--mmap] [--pattern]\n\
         unload --name N\n\
         mxm --dataset D [--algo A] [--mask M] [--phases P] [--schedule S] [--threads T] [--reps R] [--deadline-ms MS]\n\
         app --dataset D [--app tc|ktruss|bc] [--scheme S] [--schedule S] [--threads T] [--k K] [--batch B] [--deadline-ms MS]\n\
         update --dataset D [--insert 'i,j[,v];...'] [--delete 'i,j;...'] [--from-file F] [--compact]\n\
         raw --json '{...}'\n\
    update edits a resident dataset: 0-based ;-separated edge lists, or\n\
    --from-file with one op per line ('+ i j [v]' / '- i j'); --compact\n\
    forces the delta overlay into fresh CSR sections now\n\
    stats/metrics/list print tables; --json prints the raw response line\n\
    --retry N retries both failed connects (every 500 ms) and typed 'busy'\n\
    overload responses, backing off from the server's retry_after_ms hint\n\
    with capped exponential growth (hint*2^attempt, at most 5 s per wait)";

/// Copy a `--flag value` into the request under `key`, verbatim, only
/// when given — absent flags fall back to server-side defaults.
fn copy_str(p: &Parsed, flag: &str, key: &'static str, req: &mut Vec<(&'static str, Json)>) {
    if let Some(v) = p.flag(flag) {
        req.push((key, Json::str(v)));
    }
}

/// Copy a numeric `--flag value` into the request as a JSON number.
fn copy_num(
    p: &Parsed,
    flag: &str,
    key: &'static str,
    req: &mut Vec<(&'static str, Json)>,
) -> Result<(), String> {
    if let Some(v) = p.flag(flag) {
        let n: u64 = v.parse().map_err(|e| format!("--{flag} {v}: {e}"))?;
        req.push((key, Json::from(n)));
    }
    Ok(())
}

/// One `i,j[,v]` edge from a `--insert`/`--delete` list, as the protocol
/// array `[i,j]` or `[i,j,v]`. `with_value` allows the third field
/// (inserts only; the server defaults an absent value to 1.0).
fn parse_edge(item: &str, with_value: bool, flag: &str) -> Result<Json, String> {
    let parts: Vec<&str> = item.split(',').map(str::trim).collect();
    let want = if with_value { "i,j or i,j,v" } else { "i,j" };
    if parts.len() < 2 || parts.len() > if with_value { 3 } else { 2 } {
        return Err(format!("--{flag}: '{item}' is not {want}"));
    }
    let mut arr = Vec::with_capacity(parts.len());
    for (k, part) in parts.iter().take(2).enumerate() {
        let n: u32 = part
            .parse()
            .map_err(|e| format!("--{flag}: '{item}' field {}: {e}", k + 1))?;
        arr.push(Json::from(u64::from(n)));
    }
    if let Some(v) = parts.get(2) {
        let x: f64 = v
            .parse()
            .map_err(|e| format!("--{flag}: '{item}' value: {e}"))?;
        arr.push(Json::from(x));
    }
    Ok(Json::Arr(arr))
}

/// A `;`-separated edge list (`--insert 'i,j,v;i,j'`, `--delete 'i,j'`).
fn parse_edge_list(spec: &str, with_value: bool, flag: &str) -> Result<Vec<Json>, String> {
    spec.split(';')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|item| parse_edge(item, with_value, flag))
        .collect()
}

/// Read a `--from-file` batch: one op per line, `+ i j [v]` inserts,
/// `- i j` deletes; blank lines and `#` comments are skipped.
fn update_ops_from_file(path: &str) -> Result<(Vec<Json>, Vec<Json>), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("--from-file {path}: {e}"))?;
    let mut ins = Vec::new();
    let mut del = Vec::new();
    for (ln, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let ctx = format!("--from-file {path}:{}", ln + 1);
        let (sign, rest) = line.split_at(1);
        let item = rest.split_whitespace().collect::<Vec<_>>().join(",");
        match sign {
            "+" => ins.push(parse_edge(&item, true, &ctx).map_err(strip_flag_prefix)?),
            "-" => del.push(parse_edge(&item, false, &ctx).map_err(strip_flag_prefix)?),
            _ => return Err(format!("{ctx}: line must start with '+' or '-'")),
        }
    }
    Ok((ins, del))
}

/// `parse_edge` prefixes errors with `--<flag>:`; for file lines the
/// "flag" is already the `path:line` context, so drop the dashes.
fn strip_flag_prefix(e: String) -> String {
    e.strip_prefix("--").map(str::to_string).unwrap_or(e)
}

/// Build the request object for one `mxm query` invocation.
fn build_request(op: &str, p: &Parsed) -> Result<Json, String> {
    let mut req: Vec<(&'static str, Json)> = Vec::new();
    match op {
        "ping" => req.push(("op", Json::str("ping"))),
        "list" => req.push(("op", Json::str("list"))),
        "stats" => req.push(("op", Json::str("stats"))),
        "metrics" => {
            req.push(("op", Json::str("metrics")));
            copy_str(p, "format", "format", &mut req);
        }
        "shutdown" => req.push(("op", Json::str("shutdown"))),
        "load" => {
            req.push(("op", Json::str("load")));
            let path = p.flag("path").ok_or("load needs --path FILE")?;
            req.push(("path", Json::str(path)));
            copy_str(p, "name", "name", &mut req);
            copy_num(p, "parse-threads", "parse_threads", &mut req)?;
            if p.switch("no-cache") {
                req.push(("cache", Json::str("off")));
            }
            if p.switch("mmap") {
                req.push(("mmap", Json::from(true)));
            }
            if p.switch("pattern") {
                req.push(("pattern", Json::from(true)));
            }
        }
        "unload" => {
            req.push(("op", Json::str("unload")));
            let name = p.flag("name").ok_or("unload needs --name N")?;
            req.push(("name", Json::str(name)));
        }
        "mxm" => {
            req.push(("op", Json::str("mxm")));
            let ds = p.flag("dataset").ok_or("mxm needs --dataset D")?;
            req.push(("dataset", Json::str(ds)));
            copy_str(p, "algo", "algo", &mut req);
            copy_str(p, "mask", "mask", &mut req);
            copy_str(p, "phases", "phases", &mut req);
            copy_str(p, "schedule", "schedule", &mut req);
            copy_num(p, "threads", "threads", &mut req)?;
            copy_num(p, "reps", "reps", &mut req)?;
            copy_num(p, "deadline-ms", "deadline_ms", &mut req)?;
        }
        "app" => {
            req.push(("op", Json::str("app")));
            let ds = p.flag("dataset").ok_or("app needs --dataset D")?;
            req.push(("dataset", Json::str(ds)));
            copy_str(p, "app", "app", &mut req);
            copy_str(p, "scheme", "scheme", &mut req);
            copy_str(p, "schedule", "schedule", &mut req);
            copy_num(p, "threads", "threads", &mut req)?;
            copy_num(p, "k", "k", &mut req)?;
            copy_num(p, "batch", "batch", &mut req)?;
            copy_num(p, "deadline-ms", "deadline_ms", &mut req)?;
        }
        "update" => {
            req.push(("op", Json::str("update")));
            let ds = p.flag("dataset").ok_or("update needs --dataset D")?;
            req.push(("dataset", Json::str(ds)));
            let (mut ins, mut del) = match p.flag("from-file") {
                Some(path) => update_ops_from_file(path)?,
                None => (Vec::new(), Vec::new()),
            };
            if let Some(spec) = p.flag("insert") {
                ins.extend(parse_edge_list(spec, true, "insert")?);
            }
            if let Some(spec) = p.flag("delete") {
                del.extend(parse_edge_list(spec, false, "delete")?);
            }
            let compact = p.switch("compact");
            if ins.is_empty() && del.is_empty() && !compact {
                return Err(
                    "update needs ops (--insert/--delete/--from-file) or --compact".to_string(),
                );
            }
            if !ins.is_empty() {
                req.push(("insert", Json::Arr(ins)));
            }
            if !del.is_empty() {
                req.push(("delete", Json::Arr(del)));
            }
            if compact {
                req.push(("compact", Json::from(true)));
            }
        }
        other => {
            return Err(format!("unknown query op '{other}'\n\n{QUERY_USAGE}"));
        }
    }
    Ok(Json::obj(req))
}

/// Connect, retrying `--retry N` times (half a second apart) — lets a CI
/// script start `mxm serve` in the background and query it without
/// guessing at startup latency.
fn connect_with_retry(addr: &str, retries: u64) -> Result<Client, String> {
    let mut last = String::new();
    for attempt in 0..=retries {
        match Client::connect(addr) {
            Ok(c) => return Ok(c),
            Err(e) => last = e,
        }
        if attempt < retries {
            std::thread::sleep(std::time::Duration::from_millis(500));
        }
    }
    Err(last)
}

/// The capped exponential backoff before busy-retry number `attempt`:
/// the server's `retry_after_ms` hint doubled per attempt (exponent
/// capped so the shift cannot overflow), never above 5 seconds, then
/// jittered by ±25%. Without the jitter, every client rejected by the
/// same full queue computes the same wait and re-arrives in lockstep —
/// re-overloading the queue on the same tick, forever.
fn busy_backoff_ms(hint: u64, attempt: u64) -> u64 {
    let base = hint.saturating_mul(1 << attempt.min(6)).min(5_000);
    jitter_pm25(base).min(5_000)
}

/// Uniform ±25% around `base` (time-seeded xorshift — no RNG dependency,
/// and reproducibility is the opposite of what backoff jitter wants).
fn jitter_pm25(base: u64) -> u64 {
    if base == 0 {
        return 0;
    }
    let mut x = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| u64::from(d.subsec_nanos()) ^ d.as_secs())
        .unwrap_or(0x9e37_79b9_7f4a_7c15)
        | 1;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    base - base / 4 + x % (base / 2 + 1)
}

/// Send one request, resending on a typed `busy` overload response (up
/// to `retries` times) after the backoff the server hinted. Any other
/// response — success or error — is returned as-is.
fn request_with_retry(client: &mut Client, req: &Json, retries: u64) -> Result<Json, String> {
    let mut attempt = 0u64;
    loop {
        let resp = client.request(req)?;
        match client::busy_retry_after(&resp) {
            Some(hint) if attempt < retries => {
                std::thread::sleep(std::time::Duration::from_millis(busy_backoff_ms(
                    hint, attempt,
                )));
                attempt += 1;
            }
            _ => return Ok(resp),
        }
    }
}

/// Render one JSON scalar for a report line or table cell.
fn cell(v: &Json) -> String {
    match v {
        Json::Str(s) => s.clone(),
        other => other.to_line(),
    }
}

/// Render a `labels` object as `k=v,k=v` (`-` when absent or empty).
fn labels_cell(v: Option<&Json>) -> String {
    match v {
        Some(Json::Obj(pairs)) if !pairs.is_empty() => pairs
            .iter()
            .map(|(k, val)| format!("{k}={}", cell(val)))
            .collect::<Vec<_>>()
            .join(","),
        _ => "-".into(),
    }
}

/// Split a response into aligned-report ingredients: nested objects
/// flatten into dotted scalar keys, arrays of objects become tables.
fn flatten<'a>(
    prefix: String,
    v: &'a Json,
    scalars: &mut Vec<(String, String)>,
    arrays: &mut Vec<(String, &'a [Json])>,
) {
    match v {
        Json::Obj(pairs) => {
            for (k, val) in pairs {
                let key = if prefix.is_empty() {
                    k.clone()
                } else {
                    format!("{prefix}.{k}")
                };
                flatten(key, val, scalars, arrays);
            }
        }
        Json::Arr(items)
            if !items.is_empty() && items.iter().all(|i| matches!(i, Json::Obj(_))) =>
        {
            arrays.push((prefix, items));
        }
        other => scalars.push((prefix, cell(other))),
    }
}

/// Human-readable rendering of a response object: `key : value` lines
/// for scalars, one aligned table per array-of-objects field (column
/// order = first-seen key order across the rows).
fn render_report(resp: &Json, out: &mut impl Write) -> Result<(), String> {
    let mut scalars = Vec::new();
    let mut arrays = Vec::new();
    flatten(String::new(), resp, &mut scalars, &mut arrays);
    // `expect_ok` already enforced ok:true — no need to echo it.
    scalars.retain(|(k, _)| k != "ok");
    let width = scalars.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
    for (k, v) in &scalars {
        writeln!(out, "{k:<width$} : {v}").map_err(|e| e.to_string())?;
    }
    for (name, items) in arrays {
        let mut cols: Vec<&str> = Vec::new();
        for it in items {
            if let Json::Obj(pairs) = it {
                for (k, _) in pairs {
                    if !cols.iter().any(|c| c == k) {
                        cols.push(k);
                    }
                }
            }
        }
        let mut table = Table::new(&cols);
        for it in items {
            let row: Vec<String> = cols
                .iter()
                .map(|c| it.get(c).map(cell).unwrap_or_else(|| "-".into()))
                .collect();
            table.row(&row);
        }
        writeln!(out, "{name} ({} rows):\n{}", items.len(), table.to_text())
            .map_err(|e| e.to_string())?;
    }
    Ok(())
}

/// Table rendering for the `metrics` verb's JSON form: one table per
/// metric family, histograms summarized to their quantiles (the full
/// bucket vectors stay behind `--json`).
fn render_metrics(resp: &Json, out: &mut impl Write) -> Result<(), String> {
    let arr = |key: &str| resp.get(key).and_then(Json::as_arr).unwrap_or(&[]);
    let field = |it: &Json, key: &str| it.get(key).map(cell).unwrap_or_else(|| "-".into());

    for (title, key) in [("counters", "counters"), ("gauges", "gauges")] {
        let items = arr(key);
        let mut table = Table::new(&["name", "labels", "value"]);
        for it in items {
            table.row(&[
                field(it, "name"),
                labels_cell(it.get("labels")),
                field(it, "value"),
            ]);
        }
        writeln!(
            out,
            "{title} ({} series):\n{}",
            items.len(),
            table.to_text()
        )
        .map_err(|e| e.to_string())?;
    }

    let items = arr("histograms");
    let mut table = Table::new(&[
        "name", "labels", "count", "mean_us", "p50_us", "p95_us", "p99_us", "max_us",
    ]);
    for it in items {
        table.row(&[
            field(it, "name"),
            labels_cell(it.get("labels")),
            field(it, "count"),
            field(it, "mean"),
            field(it, "p50"),
            field(it, "p95"),
            field(it, "p99"),
            field(it, "max"),
        ]);
    }
    writeln!(
        out,
        "histograms ({} series):\n{}",
        items.len(),
        table.to_text()
    )
    .map_err(|e| e.to_string())?;
    Ok(())
}

/// `mxm query`: one request; `stats`/`metrics`/`list` print tables by
/// default (`--json` restores the raw line), `metrics --format
/// prometheus` prints the exposition text verbatim, every other op
/// prints the one-line JSON response.
pub fn cmd_query(p: &Parsed, out: &mut impl Write) -> Result<(), String> {
    let op = p.positional.first().ok_or(QUERY_USAGE)?;
    let addr = p.flag("connect").unwrap_or("127.0.0.1:7654");
    let retries = p.flag_parse("retry", 0u64)?;
    let mut client = connect_with_retry(addr, retries)?;
    let resp = if op == "raw" {
        let raw = p.flag("json").ok_or("raw needs --json '{...}'")?;
        client.request_line(raw)?
    } else {
        request_with_retry(&mut client, &build_request(op, p)?, retries)?
    };
    let resp = client::expect_ok(resp)?;
    if op == "raw" || p.switch("json") {
        writeln!(out, "{}", resp.to_line()).map_err(|e| e.to_string())?;
    } else if resp.get("format").and_then(Json::as_str) == Some("prometheus") {
        // The payload IS the exposition text; print it scrape-ready.
        let text = resp.get("text").and_then(Json::as_str).unwrap_or("");
        write!(out, "{text}").map_err(|e| e.to_string())?;
    } else if op == "metrics" {
        render_metrics(&resp, out)?;
    } else if matches!(op.as_str(), "stats" | "list") {
        render_report(&resp, out)?;
    } else {
        writeln!(out, "{}", resp.to_line()).map_err(|e| e.to_string())?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse;

    fn sv(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    fn parsed(args: &[&str]) -> Parsed {
        parse(
            &sv(args),
            &[
                "connect",
                "retry",
                "path",
                "name",
                "parse-threads",
                "dataset",
                "algo",
                "mask",
                "phases",
                "schedule",
                "threads",
                "reps",
                "app",
                "scheme",
                "k",
                "batch",
                "deadline-ms",
                "format",
                "insert",
                "delete",
                "from-file",
                "json",
            ],
        )
        .unwrap()
    }

    #[test]
    fn request_objects_mirror_flags() {
        let p = parsed(&[
            "mxm",
            "--dataset",
            "karate",
            "--algo",
            "hash",
            "--phases",
            "2",
            "--threads",
            "4",
        ]);
        let req = build_request("mxm", &p).unwrap();
        assert_eq!(
            req.to_line(),
            r#"{"op":"mxm","dataset":"karate","algo":"hash","phases":"2","threads":4}"#
        );
        // Absent flags are absent keys — server defaults apply.
        let p = parsed(&["mxm", "--dataset", "karate"]);
        assert_eq!(
            build_request("mxm", &p).unwrap().to_line(),
            r#"{"op":"mxm","dataset":"karate"}"#
        );
        // --deadline-ms travels as the protocol's deadline_ms field, on
        // both heavy verbs.
        let p = parsed(&["mxm", "--dataset", "karate", "--deadline-ms", "250"]);
        assert_eq!(
            build_request("mxm", &p).unwrap().to_line(),
            r#"{"op":"mxm","dataset":"karate","deadline_ms":250}"#
        );
        let p = parsed(&["app", "--dataset", "karate", "--deadline-ms", "250"]);
        assert_eq!(
            build_request("app", &p).unwrap().to_line(),
            r#"{"op":"app","dataset":"karate","deadline_ms":250}"#
        );
    }

    #[test]
    fn busy_backoff_doubles_from_the_hint_and_caps() {
        // The backoff is jittered ±25% around the capped exponential
        // base, so assert bands rather than exact values.
        let within = |hint: u64, attempt: u64, base: u64| {
            let v = busy_backoff_ms(hint, attempt);
            assert!(
                v >= base - base / 4 && v <= base + base / 4,
                "hint={hint} attempt={attempt}: {v} outside ±25% of {base}"
            );
        };
        within(40, 0, 40);
        within(40, 1, 80);
        within(40, 3, 320);
        // Exponent cap: attempts past 6 stop doubling.
        within(1, 6, 64);
        within(1, 60, 64);
        // The absolute ceiling holds even for huge hints — jitter never
        // pushes a wait past 5 s.
        assert!(busy_backoff_ms(5_000, 4) <= 5_000);
        assert!(busy_backoff_ms(u64::MAX, 2) <= 5_000);
        assert_eq!(busy_backoff_ms(0, 3), 0);
        // Distinct calls actually spread (time-seeded): over many draws
        // at a wide base, at least two distinct values must appear.
        let draws: std::collections::HashSet<u64> =
            (0..64).map(|_| busy_backoff_ms(4_000, 0)).collect();
        assert!(draws.len() > 1, "jitter produced a constant: {draws:?}");
    }

    #[test]
    fn load_and_unload_require_their_flags() {
        assert!(build_request("load", &parsed(&["load"])).is_err());
        assert!(build_request("unload", &parsed(&["unload"])).is_err());
        let p = parsed(&["load", "--path", "g.mtx", "--no-cache"]);
        let req = build_request("load", &p).unwrap();
        assert_eq!(
            req.to_line(),
            r#"{"op":"load","path":"g.mtx","cache":"off"}"#
        );
    }

    #[test]
    fn update_request_builds_batches() {
        // Inline lists: inserts carry optional values, deletes never do.
        let p = parsed(&[
            "update",
            "--dataset",
            "g",
            "--insert",
            "0,1,2.5; 3,4",
            "--delete",
            "5,6",
        ]);
        assert_eq!(
            build_request("update", &p).unwrap().to_line(),
            r#"{"op":"update","dataset":"g","insert":[[0,1,2.5],[3,4]],"delete":[[5,6]]}"#
        );
        // --compact alone is a valid request (flush the overlay now).
        let mut p = parsed(&["update", "--dataset", "g"]);
        p.switches.insert("compact".into());
        assert_eq!(
            build_request("update", &p).unwrap().to_line(),
            r#"{"op":"update","dataset":"g","compact":true}"#
        );
        // No ops and no compact: rejected client-side.
        let p = parsed(&["update", "--dataset", "g"]);
        assert!(build_request("update", &p).unwrap_err().contains("ops"));
        // Malformed lists are rejected with the offending item.
        let p = parsed(&["update", "--dataset", "g", "--insert", "0"]);
        assert!(build_request("update", &p).is_err());
        let p = parsed(&["update", "--dataset", "g", "--delete", "1,2,3"]);
        assert!(build_request("update", &p).is_err());
        let p = parsed(&["update", "--dataset", "g", "--insert", "-1,2"]);
        assert!(build_request("update", &p).is_err());
    }

    #[test]
    fn update_request_reads_op_files() {
        let dir = std::env::temp_dir().join("mxm_cli_update_file");
        std::fs::create_dir_all(&dir).unwrap();
        let ops = dir.join("batch.txt");
        std::fs::write(&ops, "# day-1 edits\n+ 0 1 2.5\n\n- 5 6\n+ 3 4\n").unwrap();
        let p = parsed(&[
            "update",
            "--dataset",
            "g",
            "--from-file",
            ops.to_str().unwrap(),
        ]);
        assert_eq!(
            build_request("update", &p).unwrap().to_line(),
            r#"{"op":"update","dataset":"g","insert":[[0,1,2.5],[3,4]],"delete":[[5,6]]}"#
        );
        // A bad line is reported with its file:line context.
        std::fs::write(&ops, "* 0 1\n").unwrap();
        let p = parsed(&[
            "update",
            "--dataset",
            "g",
            "--from-file",
            ops.to_str().unwrap(),
        ]);
        let err = build_request("update", &p).unwrap_err();
        assert!(err.contains(":1"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unknown_op_is_rejected_with_usage() {
        let err = build_request("frobnicate", &parsed(&["frobnicate"])).unwrap_err();
        assert!(err.contains("usage:"), "{err}");
    }

    #[test]
    fn metrics_request_carries_format() {
        let req = build_request("metrics", &parsed(&["metrics"])).unwrap();
        assert_eq!(req.to_line(), r#"{"op":"metrics"}"#);
        let p = parsed(&["metrics", "--format", "prometheus"]);
        assert_eq!(
            build_request("metrics", &p).unwrap().to_line(),
            r#"{"op":"metrics","format":"prometheus"}"#
        );
    }

    #[test]
    fn query_renders_tables_by_default_and_raw_json_on_demand() {
        let dir = std::env::temp_dir().join("mxm_cli_querytbl");
        std::fs::create_dir_all(&dir).unwrap();
        let mtx = dir.join("g.mtx");
        mspgemm_io::mtx::write_mtx_file(&mtx, &mspgemm_gen::er_symmetric(80, 5, 11)).unwrap();
        let server = Server::start("127.0.0.1:0", ServeConfig::default()).unwrap();
        server
            .preload(&[mtx.to_str().unwrap().to_string()])
            .unwrap();
        let addr = server.addr().to_string();

        // Traffic so the histograms have something to show.
        let p = parsed(&["mxm", "--connect", &addr, "--dataset", "g"]);
        cmd_query(&p, &mut Vec::new()).unwrap();

        // stats: aligned key/value report, not a JSON line.
        let mut out = Vec::new();
        crate::dispatch(
            &["query", "stats", "--connect", &addr]
                .iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>(),
            &mut out,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(!text.starts_with('{'), "{text}");
        assert!(text.contains("requests_total"), "{text}");
        assert!(text.contains(" : "), "{text}");

        // stats --json: the raw response line (the escape hatch).
        let mut out = Vec::new();
        crate::dispatch(
            &["query", "stats", "--connect", &addr, "--json"]
                .iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>(),
            &mut out,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with('{'), "{text}");
        assert!(text.contains("\"ok\":true"), "{text}");

        // metrics: one table per family, quantile columns for histograms.
        let mut out = Vec::new();
        cmd_query(&parsed(&["metrics", "--connect", &addr]), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("counters ("), "{text}");
        assert!(text.contains("gauges ("), "{text}");
        assert!(text.contains("p99_us"), "{text}");
        assert!(text.contains("verb=mxm"), "{text}");

        // metrics --format prometheus: exposition text, verbatim.
        let mut out = Vec::new();
        cmd_query(
            &parsed(&["metrics", "--connect", &addr, "--format", "prometheus"]),
            &mut out,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("# TYPE requests_total counter"), "{text}");
        assert!(text.contains("request_latency_us_bucket"), "{text}");

        // list: a table whose rows are the resident datasets.
        let mut out = Vec::new();
        cmd_query(&parsed(&["list", "--connect", &addr]), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("datasets (1 rows):"), "{text}");
        assert!(text.contains("name"), "{text}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn serve_and_query_roundtrip_in_process() {
        let dir = std::env::temp_dir().join("mxm_cli_servecmd");
        std::fs::create_dir_all(&dir).unwrap();
        let mtx = dir.join("g.mtx");
        mspgemm_io::mtx::write_mtx_file(&mtx, &mspgemm_gen::er_symmetric(90, 5, 23)).unwrap();

        let server = Server::start("127.0.0.1:0", ServeConfig::default()).unwrap();
        server
            .preload(&[mtx.to_str().unwrap().to_string()])
            .unwrap();
        let addr = server.addr().to_string();

        let p = parsed(&["mxm", "--connect", &addr, "--dataset", "g", "--algo", "msa"]);
        let mut out = Vec::new();
        cmd_query(&p, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("\"fingerprint\""), "{text}");
        assert!(text.contains("\"ok\":true"), "{text}");

        // A protocol error surfaces as a CLI error with the code.
        let p = parsed(&["mxm", "--connect", &addr, "--dataset", "missing"]);
        let err = cmd_query(&p, &mut Vec::new()).unwrap_err();
        assert!(err.starts_with("unknown_dataset:"), "{err}");
    }
}
