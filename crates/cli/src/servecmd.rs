//! The serving subcommands: `mxm serve` (run the resident-dataset server)
//! and `mxm query` (script one protocol request against it).
//!
//! `serve` binds the address, preloads any datasets named as positional
//! arguments, prints one `listening on <addr>` line, and parks until a
//! `shutdown` request arrives. `query` builds the request object from
//! flags (so shell scripts never hand-assemble JSON), sends it, prints
//! the response as one JSON line, and exits non-zero on a protocol
//! error — which makes it usable directly in CI smoke tests.

use crate::args::Parsed;
use masked_spgemm::RowSchedule;
use mspgemm_io::CachePolicy;
use mspgemm_serve::{client, Client, Json, ServeConfig, Server};
use std::io::Write;

/// `mxm serve`: start the server, preload datasets, serve until a
/// `shutdown` request.
pub fn cmd_serve(p: &Parsed, out: &mut impl Write) -> Result<(), String> {
    let listen = p.flag("listen").unwrap_or("127.0.0.1:7654");
    let schedule: RowSchedule = p.flag("schedule").unwrap_or("guided").parse()?;
    let parse_threads = p.flag_parse("parse-threads", 0usize)?;
    let cache = if p.switch("no-cache") {
        CachePolicy::Off
    } else {
        CachePolicy::ReadWrite
    };
    let server = Server::start(
        listen,
        ServeConfig {
            schedule,
            parse_threads,
            cache,
            mmap: p.switch("mmap"),
        },
    )?;
    for (path, name) in p.positional.iter().zip(server.preload(&p.positional)?) {
        writeln!(out, "preloaded {name} from {path}").map_err(|e| e.to_string())?;
    }
    writeln!(out, "listening on {}", server.addr()).map_err(|e| e.to_string())?;
    // The line must reach a piped/backgrounded log before we park.
    out.flush().map_err(|e| e.to_string())?;
    server.wait();
    writeln!(out, "server stopped").map_err(|e| e.to_string())?;
    Ok(())
}

const QUERY_USAGE: &str = "usage: mxm query [--connect ADDR] [--retry N] <op> [op flags]\n\
    ops: ping | list | stats | shutdown\n\
         load --path FILE [--name N] [--parse-threads N] [--no-cache] [--mmap]\n\
         unload --name N\n\
         mxm --dataset D [--algo A] [--mask M] [--phases P] [--schedule S] [--threads T] [--reps R]\n\
         app --dataset D [--app tc|ktruss|bc] [--scheme S] [--schedule S] [--threads T] [--k K] [--batch B]\n\
         raw --json '{...}'";

/// Copy a `--flag value` into the request under `key`, verbatim, only
/// when given — absent flags fall back to server-side defaults.
fn copy_str(p: &Parsed, flag: &str, key: &'static str, req: &mut Vec<(&'static str, Json)>) {
    if let Some(v) = p.flag(flag) {
        req.push((key, Json::str(v)));
    }
}

/// Copy a numeric `--flag value` into the request as a JSON number.
fn copy_num(
    p: &Parsed,
    flag: &str,
    key: &'static str,
    req: &mut Vec<(&'static str, Json)>,
) -> Result<(), String> {
    if let Some(v) = p.flag(flag) {
        let n: u64 = v.parse().map_err(|e| format!("--{flag} {v}: {e}"))?;
        req.push((key, Json::from(n)));
    }
    Ok(())
}

/// Build the request object for one `mxm query` invocation.
fn build_request(op: &str, p: &Parsed) -> Result<Json, String> {
    let mut req: Vec<(&'static str, Json)> = Vec::new();
    match op {
        "ping" => req.push(("op", Json::str("ping"))),
        "list" => req.push(("op", Json::str("list"))),
        "stats" => req.push(("op", Json::str("stats"))),
        "shutdown" => req.push(("op", Json::str("shutdown"))),
        "load" => {
            req.push(("op", Json::str("load")));
            let path = p.flag("path").ok_or("load needs --path FILE")?;
            req.push(("path", Json::str(path)));
            copy_str(p, "name", "name", &mut req);
            copy_num(p, "parse-threads", "parse_threads", &mut req)?;
            if p.switch("no-cache") {
                req.push(("cache", Json::str("off")));
            }
            if p.switch("mmap") {
                req.push(("mmap", Json::from(true)));
            }
        }
        "unload" => {
            req.push(("op", Json::str("unload")));
            let name = p.flag("name").ok_or("unload needs --name N")?;
            req.push(("name", Json::str(name)));
        }
        "mxm" => {
            req.push(("op", Json::str("mxm")));
            let ds = p.flag("dataset").ok_or("mxm needs --dataset D")?;
            req.push(("dataset", Json::str(ds)));
            copy_str(p, "algo", "algo", &mut req);
            copy_str(p, "mask", "mask", &mut req);
            copy_str(p, "phases", "phases", &mut req);
            copy_str(p, "schedule", "schedule", &mut req);
            copy_num(p, "threads", "threads", &mut req)?;
            copy_num(p, "reps", "reps", &mut req)?;
        }
        "app" => {
            req.push(("op", Json::str("app")));
            let ds = p.flag("dataset").ok_or("app needs --dataset D")?;
            req.push(("dataset", Json::str(ds)));
            copy_str(p, "app", "app", &mut req);
            copy_str(p, "scheme", "scheme", &mut req);
            copy_str(p, "schedule", "schedule", &mut req);
            copy_num(p, "threads", "threads", &mut req)?;
            copy_num(p, "k", "k", &mut req)?;
            copy_num(p, "batch", "batch", &mut req)?;
        }
        other => {
            return Err(format!("unknown query op '{other}'\n\n{QUERY_USAGE}"));
        }
    }
    Ok(Json::obj(req))
}

/// Connect, retrying `--retry N` times (half a second apart) — lets a CI
/// script start `mxm serve` in the background and query it without
/// guessing at startup latency.
fn connect_with_retry(addr: &str, retries: u64) -> Result<Client, String> {
    let mut last = String::new();
    for attempt in 0..=retries {
        match Client::connect(addr) {
            Ok(c) => return Ok(c),
            Err(e) => last = e,
        }
        if attempt < retries {
            std::thread::sleep(std::time::Duration::from_millis(500));
        }
    }
    Err(last)
}

/// `mxm query`: one request, one JSON response line on stdout.
pub fn cmd_query(p: &Parsed, out: &mut impl Write) -> Result<(), String> {
    let op = p.positional.first().ok_or(QUERY_USAGE)?;
    let addr = p.flag("connect").unwrap_or("127.0.0.1:7654");
    let retries = p.flag_parse("retry", 0u64)?;
    let mut client = connect_with_retry(addr, retries)?;
    let resp = if op == "raw" {
        let raw = p.flag("json").ok_or("raw needs --json '{...}'")?;
        client.request_line(raw)?
    } else {
        client.request(&build_request(op, p)?)?
    };
    let resp = client::expect_ok(resp)?;
    writeln!(out, "{}", resp.to_line()).map_err(|e| e.to_string())?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse;

    fn sv(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    fn parsed(args: &[&str]) -> Parsed {
        parse(
            &sv(args),
            &[
                "connect",
                "retry",
                "path",
                "name",
                "parse-threads",
                "dataset",
                "algo",
                "mask",
                "phases",
                "schedule",
                "threads",
                "reps",
                "app",
                "scheme",
                "k",
                "batch",
                "json",
            ],
        )
        .unwrap()
    }

    #[test]
    fn request_objects_mirror_flags() {
        let p = parsed(&[
            "mxm",
            "--dataset",
            "karate",
            "--algo",
            "hash",
            "--phases",
            "2",
            "--threads",
            "4",
        ]);
        let req = build_request("mxm", &p).unwrap();
        assert_eq!(
            req.to_line(),
            r#"{"op":"mxm","dataset":"karate","algo":"hash","phases":"2","threads":4}"#
        );
        // Absent flags are absent keys — server defaults apply.
        let p = parsed(&["mxm", "--dataset", "karate"]);
        assert_eq!(
            build_request("mxm", &p).unwrap().to_line(),
            r#"{"op":"mxm","dataset":"karate"}"#
        );
    }

    #[test]
    fn load_and_unload_require_their_flags() {
        assert!(build_request("load", &parsed(&["load"])).is_err());
        assert!(build_request("unload", &parsed(&["unload"])).is_err());
        let p = parsed(&["load", "--path", "g.mtx", "--no-cache"]);
        let req = build_request("load", &p).unwrap();
        assert_eq!(
            req.to_line(),
            r#"{"op":"load","path":"g.mtx","cache":"off"}"#
        );
    }

    #[test]
    fn unknown_op_is_rejected_with_usage() {
        let err = build_request("frobnicate", &parsed(&["frobnicate"])).unwrap_err();
        assert!(err.contains("usage:"), "{err}");
    }

    #[test]
    fn serve_and_query_roundtrip_in_process() {
        let dir = std::env::temp_dir().join("mxm_cli_servecmd");
        std::fs::create_dir_all(&dir).unwrap();
        let mtx = dir.join("g.mtx");
        mspgemm_io::mtx::write_mtx_file(&mtx, &mspgemm_gen::er_symmetric(90, 5, 23)).unwrap();

        let server = Server::start("127.0.0.1:0", ServeConfig::default()).unwrap();
        server
            .preload(&[mtx.to_str().unwrap().to_string()])
            .unwrap();
        let addr = server.addr().to_string();

        let p = parsed(&["mxm", "--connect", &addr, "--dataset", "g", "--algo", "msa"]);
        let mut out = Vec::new();
        cmd_query(&p, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("\"fingerprint\""), "{text}");
        assert!(text.contains("\"ok\":true"), "{text}");

        // A protocol error surfaces as a CLI error with the code.
        let p = parsed(&["mxm", "--connect", &addr, "--dataset", "missing"]);
        let err = cmd_query(&p, &mut Vec::new()).unwrap_err();
        assert!(err.starts_with("unknown_dataset:"), "{err}");
    }
}
