//! A small dependency-free argument parser (the build environment has no
//! crates.io access, so `clap` is not an option — and the surface is
//! small enough not to need it).
//!
//! Grammar: `mxm <command> [--flag value | --switch | positional]...`.
//! Flags that take values are declared up front; everything else starting
//! with `--` is a boolean switch; the rest are positionals.

use std::collections::{HashMap, HashSet};

/// Parsed arguments for one subcommand.
#[derive(Debug, Default)]
pub struct Parsed {
    /// Positional arguments in order.
    pub positional: Vec<String>,
    /// `--flag value` pairs.
    pub flags: HashMap<String, String>,
    /// Bare `--switch`es.
    pub switches: HashSet<String>,
}

impl Parsed {
    /// The flag's value, if given.
    pub fn flag(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(|s| s.as_str())
    }

    /// The flag's value parsed into `T`, or `default` when absent.
    pub fn flag_parse<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        match self.flags.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|e| format!("--{name} {v}: {e}")),
        }
    }

    /// Whether a bare switch was given.
    pub fn switch(&self, name: &str) -> bool {
        self.switches.contains(name)
    }
}

/// Parse `args`, treating each name in `value_flags` as a `--flag value`
/// pair. `--flag=value` is also accepted. `--` ends flag processing.
pub fn parse(args: &[String], value_flags: &[&str]) -> Result<Parsed, String> {
    let mut out = Parsed::default();
    let mut it = args.iter().peekable();
    let mut raw_only = false;
    while let Some(a) = it.next() {
        if raw_only || !a.starts_with("--") {
            out.positional.push(a.clone());
            continue;
        }
        if a == "--" {
            raw_only = true;
            continue;
        }
        let body = &a[2..];
        if let Some((k, v)) = body.split_once('=') {
            if !value_flags.contains(&k) {
                return Err(format!("flag --{k} does not take a value"));
            }
            out.flags.insert(k.to_string(), v.to_string());
        } else if value_flags.contains(&body) {
            let v = it
                .next()
                .ok_or_else(|| format!("flag --{body} needs a value"))?;
            out.flags.insert(body.to_string(), v.clone());
        } else {
            out.switches.insert(body.to_string());
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn flags_switches_positionals() {
        let p = parse(
            &sv(&["--algo", "hash", "--verbose", "input.mtx", "--reps=3"]),
            &["algo", "reps"],
        )
        .unwrap();
        assert_eq!(p.flag("algo"), Some("hash"));
        assert_eq!(p.flag("reps"), Some("3"));
        assert!(p.switch("verbose"));
        assert_eq!(p.positional, vec!["input.mtx"]);
    }

    #[test]
    fn flag_parse_with_default() {
        let p = parse(&sv(&["--reps", "7"]), &["reps"]).unwrap();
        assert_eq!(p.flag_parse("reps", 2usize).unwrap(), 7);
        assert_eq!(p.flag_parse("threads", 4usize).unwrap(), 4);
        let bad = parse(&sv(&["--reps", "x"]), &["reps"]).unwrap();
        assert!(bad.flag_parse("reps", 2usize).is_err());
    }

    #[test]
    fn missing_value_is_an_error() {
        assert!(parse(&sv(&["--algo"]), &["algo"]).is_err());
        assert!(parse(&sv(&["--oops=3"]), &[]).is_err());
    }

    #[test]
    fn double_dash_ends_flags() {
        let p = parse(&sv(&["--", "--weird-file.mtx"]), &[]).unwrap();
        assert_eq!(p.positional, vec!["--weird-file.mtx"]);
    }
}
