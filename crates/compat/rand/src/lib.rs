//! Offline stand-in for [rand](https://crates.io/crates/rand).
//!
//! The build environment has no crates.io access; this crate provides the
//! subset of rand 0.8's API the workspace uses — `SeedableRng::
//! seed_from_u64`, `Rng::gen`, `Rng::gen_range`, `Rng::gen_bool`, and the
//! `SmallRng` / `StdRng` types — over a SplitMix64 core (Steele et al.,
//! "Fast Splittable Pseudorandom Number Generators", OOPSLA 2014).
//!
//! Streams differ bit-for-bit from the real rand crate's, but every
//! consumer in this workspace only requires determinism given a seed,
//! which SplitMix64 provides. Sampling uses multiply-shift range reduction
//! (Lemire 2019) rather than rejection; the tiny modulo bias is
//! irrelevant for test-data generation.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level 64-bit generator interface.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Deterministically derive a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Types samplable uniformly from raw generator output (`Rng::gen`).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 random mantissa bits.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 random mantissa bits.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Integer types a range can be sampled over.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[low, high)`; `low < high`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Successor for inclusive-range widening (saturating).
    fn successor(self) -> Self;
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let span = (high - low) as u64;
                // Multiply-shift range reduction over the full 64-bit draw.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                low + hi as $t
            }
            #[inline]
            fn successor(self) -> Self {
                self.saturating_add(1)
            }
        }
    )*};
}

impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let span = high.wrapping_sub(low) as u64;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                low.wrapping_add(hi as $t)
            }
            #[inline]
            fn successor(self) -> Self {
                self.saturating_add(1)
            }
        }
    )*};
}

impl_sample_uniform_int!(i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    #[inline]
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        low + f64::sample(rng) * (high - low)
    }
    #[inline]
    fn successor(self) -> Self {
        self
    }
}

/// Argument forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_range(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty inclusive range");
        T::sample_range(rng, lo, hi.successor())
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draw a value of `T` from its standard distribution
    /// (`f64`/`f32`: uniform `[0,1)`; integers: uniform over all bits).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform draw from a range (`a..b` or `a..=b`).
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0,1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Small fast generator (SplitMix64 core in this shim).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            splitmix64(&mut self.state)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // One warm-up step decorrelates small consecutive seeds.
            let mut state = seed;
            splitmix64(&mut state);
            SmallRng { state }
        }
    }

    /// "Standard" generator. Statistically the same core as [`SmallRng`]
    /// in this shim, but a distinct stream (domain-separated seed).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            splitmix64(&mut self.state)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed ^ 0x5851_f42d_4c95_7f2d;
            splitmix64(&mut state);
            StdRng { state }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::{SmallRng, StdRng};
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_give_distinct_streams() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_exclusive_bounds() {
        let mut r = SmallRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let x: usize = r.gen_range(0..10usize);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&b| b), "all buckets hit: {seen:?}");
        for _ in 0..1000 {
            let x = r.gen_range(5..6u32);
            assert_eq!(x, 5);
        }
    }

    #[test]
    fn gen_range_inclusive_signed() {
        let mut r = StdRng::seed_from_u64(11);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..2000 {
            let x = r.gen_range(-4i64..=4);
            assert!((-4..=4).contains(&x));
            lo_seen |= x == -4;
            hi_seen |= x == 4;
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn gen_bool_rates() {
        let mut r = SmallRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "p=0.25 gave {hits}/10000");
    }

    #[test]
    fn uniformity_rough_check() {
        // Mean of [0,1) draws ~ 0.5; catches catastrophic generator bugs.
        let mut r = SmallRng::seed_from_u64(9);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
