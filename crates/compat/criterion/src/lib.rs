//! Offline stand-in for [criterion](https://crates.io/crates/criterion).
//!
//! Provides the API the workspace's microbenchmarks use — [`Criterion`],
//! `benchmark_group`, `bench_with_input`, `bench_function`, [`Bencher::
//! iter`], [`BenchmarkId`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros — with a simple median-of-samples timing
//! loop instead of criterion's statistical machinery. Good enough to spot
//! order-of-magnitude regressions by eye; not a statistics package.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// An identifier combining a function name and a parameter label.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
    parameter: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: name.into(),
            parameter: parameter.to_string(),
        }
    }

    /// Parameter-only id.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: String::new(),
            parameter: parameter.to_string(),
        }
    }

    fn label(&self) -> String {
        if self.name.is_empty() {
            self.parameter.clone()
        } else if self.parameter.is_empty() {
            self.name.clone()
        } else {
            format!("{}/{}", self.name, self.parameter)
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            name: s.to_string(),
            parameter: String::new(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId {
            name: s,
            parameter: String::new(),
        }
    }
}

/// Runs one benchmark's timing loop.
pub struct Bencher {
    samples: usize,
    /// Median seconds per iteration, filled by [`Bencher::iter`].
    last_estimate: f64,
}

impl Bencher {
    /// Time `f`, storing the median per-iteration seconds.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        black_box(f()); // warm-up
        let mut times: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(f());
            times.push(t0.elapsed().as_secs_f64());
        }
        times.sort_by(|a, b| a.partial_cmp(b).unwrap());
        self.last_estimate = times[times.len() / 2];
    }
}

fn human(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmark `f` with an input reference.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: self.sample_size,
            last_estimate: f64::NAN,
        };
        f(&mut b, input);
        println!(
            "{}/{}: {} /iter (median of {})",
            self.name,
            id.label(),
            human(b.last_estimate),
            self.sample_size
        );
        self
    }

    /// Benchmark a closure with no explicit input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: self.sample_size,
            last_estimate: f64::NAN,
        };
        f(&mut b);
        println!(
            "{}/{}: {} /iter (median of {})",
            self.name,
            id.label(),
            human(b.last_estimate),
            self.sample_size
        );
        self
    }

    /// End the group (printing is immediate in this shim; kept for API
    /// compatibility).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Fresh driver with default settings.
    pub fn new() -> Self {
        Criterion {}
    }

    /// Open a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _parent: self,
        }
    }

    /// Benchmark a standalone function.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: 10,
            last_estimate: f64::NAN,
        };
        f(&mut b);
        println!("{}: {} /iter (median of 10)", name, human(b.last_estimate));
        self
    }

    /// Measurement-time knob; accepted and ignored.
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }
}

/// Define a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::new();
            $($target(&mut c);)+
        }
    };
}

/// Define `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_times_a_closure() {
        let mut c = Criterion::new();
        let mut g = c.benchmark_group("demo");
        g.sample_size(3);
        let mut ran = 0u32;
        g.bench_with_input(BenchmarkId::new("inc", 1), &5u64, |b, &x| {
            b.iter(|| {
                ran += 1;
                x + 1
            })
        });
        g.finish();
        assert!(ran >= 3, "closure must run at least sample_size times");
    }

    #[test]
    fn human_units() {
        assert!(human(2.0).ends_with(" s"));
        assert!(human(2e-3).ends_with(" ms"));
        assert!(human(2e-6).ends_with(" µs"));
        assert!(human(2e-9).ends_with(" ns"));
    }
}
