//! Offline stand-in for the `memmap2` crate: the subset this workspace
//! uses — read-only, whole-file, shared mappings.
//!
//! The build environment has no crates.io access, so this shim provides
//! [`Mmap::map`] with the same signature and semantics as `memmap2`'s
//! (the CI `real-deps` lane swaps in the real crate). On unix it calls
//! the platform's `mmap`/`munmap` through their C ABI — every Rust `std`
//! binary on those targets already links the C library, so no external
//! crate is needed. On non-unix targets it degrades to reading the file
//! into an anonymous heap buffer: correct, not zero-copy.
//!
//! Mappings are page-aligned by the kernel, so section alignment within
//! a mapped file equals section alignment within the file itself — the
//! property the `.msb` v2 layout is built around.

#![warn(missing_docs)]

use std::fs::File;
use std::io;
use std::ops::Deref;

#[cfg(unix)]
mod sys {
    use std::ffi::{c_int, c_void};
    use std::fs::File;
    use std::io;
    use std::os::unix::io::AsRawFd;

    const PROT_READ: c_int = 1;
    // MAP_SHARED is 1 on every unix this builds for (Linux, macOS, BSDs).
    const MAP_SHARED: c_int = 1;

    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> c_int;
        fn madvise(addr: *mut c_void, len: usize, advice: c_int) -> c_int;
    }

    /// A live kernel mapping (never zero-length).
    pub struct RawMap {
        ptr: *const u8,
        len: usize,
    }

    // SAFETY: the mapping is read-only and owned uniquely by this value.
    unsafe impl Send for RawMap {}
    unsafe impl Sync for RawMap {}

    impl RawMap {
        pub fn new(file: &File, len: usize) -> io::Result<RawMap> {
            // SAFETY: a fresh PROT_READ/MAP_SHARED mapping of `len` bytes
            // backed by `file`; the fd may close afterwards (the mapping
            // keeps its own reference to the file).
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_SHARED,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as isize == -1 {
                return Err(io::Error::last_os_error());
            }
            Ok(RawMap {
                ptr: ptr as *const u8,
                len,
            })
        }

        pub fn as_slice(&self) -> &[u8] {
            // SAFETY: `ptr..ptr+len` is a live PROT_READ mapping.
            unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
        }

        pub fn advise(&self, advice: c_int) -> io::Result<()> {
            // SAFETY: `ptr` is the page-aligned base of a live mapping of
            // exactly `len` bytes (what `new` mapped); madvise is a pure
            // access-pattern hint over that range.
            let rc = unsafe { madvise(self.ptr as *mut c_void, self.len, advice) };
            if rc == 0 {
                Ok(())
            } else {
                Err(io::Error::last_os_error())
            }
        }
    }

    impl Drop for RawMap {
        fn drop(&mut self) {
            // SAFETY: unmapping exactly what `new` mapped.
            unsafe { munmap(self.ptr as *mut std::ffi::c_void, self.len) };
        }
    }
}

enum Backing {
    /// Zero bytes: `mmap` rejects empty ranges, so no mapping exists.
    Empty,
    #[cfg(unix)]
    Mapped(sys::RawMap),
    /// Non-unix fallback: the file copied to the heap.
    #[cfg(not(unix))]
    Heap(Vec<u8>),
}

/// Access-pattern hints for [`Mmap::advise`] — the subset of
/// `memmap2::Advice` this workspace uses, with the POSIX `madvise`
/// constant values shared by Linux, macOS, and the BSDs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(i32)]
pub enum Advice {
    /// No special treatment (`MADV_NORMAL`).
    Normal = 0,
    /// Expect random page references (`MADV_RANDOM`).
    Random = 1,
    /// Expect sequential page references — read-ahead aggressively and
    /// drop pages soon after use (`MADV_SEQUENTIAL`).
    Sequential = 2,
    /// Expect access in the near future — start read-ahead now
    /// (`MADV_WILLNEED`).
    WillNeed = 3,
}

/// A read-only memory map of an entire file (API-compatible subset of
/// `memmap2::Mmap`).
pub struct Mmap {
    backing: Backing,
}

impl Mmap {
    /// Map `file` read-only in its entirety.
    ///
    /// # Safety
    /// As with the real `memmap2`: the caller must ensure the underlying
    /// file is not truncated or written while the map is alive — the
    /// kernel surfaces such external writes through the mapping (and
    /// truncation can fault). Callers that validate the mapped bytes
    /// once and require them stable must enforce that themselves.
    ///
    /// # Errors
    /// Any metadata or mapping failure from the OS.
    pub unsafe fn map(file: &File) -> io::Result<Mmap> {
        let len = file.metadata()?.len();
        if len > usize::MAX as u64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "file too large to address",
            ));
        }
        if len == 0 {
            return Ok(Mmap {
                backing: Backing::Empty,
            });
        }
        #[cfg(unix)]
        {
            Ok(Mmap {
                backing: Backing::Mapped(sys::RawMap::new(file, len as usize)?),
            })
        }
        #[cfg(not(unix))]
        {
            use std::io::Read;
            let mut buf = Vec::with_capacity(len as usize);
            let mut f = file.try_clone()?;
            f.read_to_end(&mut buf)?;
            Ok(Mmap {
                backing: Backing::Heap(buf),
            })
        }
    }

    /// The mapped bytes.
    pub fn as_slice(&self) -> &[u8] {
        match &self.backing {
            Backing::Empty => &[],
            #[cfg(unix)]
            Backing::Mapped(m) => m.as_slice(),
            #[cfg(not(unix))]
            Backing::Heap(v) => v,
        }
    }

    /// Byte count.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// `true` iff the file was empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Advise the kernel about the expected access pattern of the whole
    /// mapping (same contract as `memmap2::Mmap::advise`). A hint only:
    /// correctness never depends on it. No-op for empty mappings and the
    /// non-unix heap fallback.
    pub fn advise(&self, advice: Advice) -> io::Result<()> {
        match &self.backing {
            Backing::Empty => Ok(()),
            #[cfg(unix)]
            Backing::Mapped(m) => m.advise(advice as std::ffi::c_int),
            #[cfg(not(unix))]
            Backing::Heap(_) => {
                let _ = advice;
                Ok(())
            }
        }
    }
}

impl Deref for Mmap {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::fmt::Debug for Mmap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Mmap(len={})", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn tmp(name: &str, contents: &[u8]) -> std::path::PathBuf {
        let p = std::env::temp_dir().join(format!("memmap2_shim_{name}"));
        let mut f = File::create(&p).unwrap();
        f.write_all(contents).unwrap();
        f.sync_all().unwrap();
        p
    }

    #[test]
    fn maps_file_contents() {
        let p = tmp("basic", b"hello mapping");
        let f = File::open(&p).unwrap();
        let m = unsafe { Mmap::map(&f) }.unwrap();
        assert_eq!(&m[..], b"hello mapping");
        assert_eq!(m.len(), 13);
        assert!(!m.is_empty());
        drop(f); // The mapping outlives the fd.
        assert_eq!(&m[..5], b"hello");
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn empty_file_maps_empty() {
        let p = tmp("empty", b"");
        let m = unsafe { Mmap::map(&File::open(&p).unwrap()) }.unwrap();
        assert!(m.is_empty());
        assert_eq!(&m[..], b"");
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn advise_accepts_every_hint() {
        let p = tmp("advise", &vec![3u8; 1 << 14]);
        let m = unsafe { Mmap::map(&File::open(&p).unwrap()) }.unwrap();
        for advice in [
            Advice::Normal,
            Advice::Random,
            Advice::Sequential,
            Advice::WillNeed,
        ] {
            m.advise(advice)
                .unwrap_or_else(|e| panic!("madvise({advice:?}) failed on a fresh mapping: {e}"));
        }
        // The hint changes nothing observable.
        assert!(m.iter().all(|&b| b == 3));
        // Empty mappings take hints as no-ops.
        let pe = tmp("advise_empty", b"");
        let me = unsafe { Mmap::map(&File::open(&pe).unwrap()) }.unwrap();
        me.advise(Advice::Sequential).unwrap();
        std::fs::remove_file(&p).ok();
        std::fs::remove_file(&pe).ok();
    }

    #[test]
    fn mapping_is_sync_send() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Mmap>();
        let p = tmp("threads", &vec![7u8; 1 << 16]);
        let m = std::sync::Arc::new(unsafe { Mmap::map(&File::open(&p).unwrap()) }.unwrap());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || m.iter().map(|&b| b as u64).sum::<u64>())
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 7 * (1 << 16));
        }
        std::fs::remove_file(&p).ok();
    }
}
