//! The parallel-iterator core: indexed sources, lazy adapters, and
//! pool-driven terminal drives.
//!
//! Everything is built on [`Source`]: an indexed producer whose items can
//! be fetched by position, at most once per position. Terminal operations
//! split `0..len` into contiguous chunks — oversubscribed a few × beyond
//! the thread count — and publish one job to the persistent worker pool
//! (the private `pool` module). Each executor claims chunks through a
//! shared atomic
//! cursor (guided self-scheduling), so a slow chunk no longer pins its
//! whole thread's share of the input; chunk results are written to
//! index-addressed slots, preserving input order exactly as before.

use crate::{chunk_ranges, current_num_threads, override_value};
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// An indexed, thread-shareable item producer.
///
/// # Safety
///
/// Implementations must tolerate `get` being called concurrently from
/// multiple threads for **distinct** indices; callers must not call `get`
/// twice for the same index (mutable-slice sources hand out aliasing
/// exclusive references otherwise).
pub unsafe trait Source: Sync {
    /// The element type produced.
    type Item: Send;
    /// Total number of items.
    fn len(&self) -> usize;
    /// Whether the source produces no items.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Produce item `i`.
    ///
    /// # Safety
    /// `i < self.len()`, and each index is fetched at most once.
    unsafe fn get(&self, i: usize) -> Self::Item;
}

/// A half-open integer range usable as a parallel source.
pub trait RangeIdx: Copy + Send + Sync {
    /// `self + offset` as the index type.
    fn offset(self, by: usize) -> Self;
    /// Distance to `end` in items.
    fn distance(self, end: Self) -> usize;
}

macro_rules! impl_range_idx {
    ($($t:ty),*) => {$(
        impl RangeIdx for $t {
            #[inline]
            fn offset(self, by: usize) -> Self {
                self + by as $t
            }
            #[inline]
            fn distance(self, end: Self) -> usize {
                if end > self { (end - self) as usize } else { 0 }
            }
        }
    )*};
}

impl_range_idx!(u32, u64, usize);

/// Source over an integer range.
pub struct RangeSource<T> {
    start: T,
    len: usize,
}

unsafe impl<T: RangeIdx> Source for RangeSource<T> {
    type Item = T;
    fn len(&self) -> usize {
        self.len
    }
    unsafe fn get(&self, i: usize) -> T {
        self.start.offset(i)
    }
}

/// Lazily mapped source.
pub struct MapSource<S, F> {
    src: S,
    f: F,
}

unsafe impl<S: Source, F, U> Source for MapSource<S, F>
where
    F: Fn(S::Item) -> U + Sync,
    U: Send,
{
    type Item = U;
    fn len(&self) -> usize {
        self.src.len()
    }
    unsafe fn get(&self, i: usize) -> U {
        (self.f)(unsafe { self.src.get(i) })
    }
}

/// Source pairing each item with its index.
pub struct EnumerateSource<S> {
    src: S,
}

unsafe impl<S: Source> Source for EnumerateSource<S> {
    type Item = (usize, S::Item);
    fn len(&self) -> usize {
        self.src.len()
    }
    unsafe fn get(&self, i: usize) -> (usize, S::Item) {
        (i, unsafe { self.src.get(i) })
    }
}

/// Source zipping two sources positionally (length = shorter).
pub struct ZipSource<A, B> {
    a: A,
    b: B,
}

unsafe impl<A: Source, B: Source> Source for ZipSource<A, B> {
    type Item = (A::Item, B::Item);
    fn len(&self) -> usize {
        self.a.len().min(self.b.len())
    }
    unsafe fn get(&self, i: usize) -> (A::Item, B::Item) {
        unsafe { (self.a.get(i), self.b.get(i)) }
    }
}

/// A parallel iterator: a [`Source`] plus drive configuration.
pub struct ParIter<S> {
    pub(crate) src: S,
    pub(crate) min_len: usize,
    pub(crate) max_len: usize,
}

pub(crate) fn par_iter_from<S: Source>(src: S) -> ParIter<S> {
    ParIter {
        src,
        min_len: 1,
        max_len: usize::MAX,
    }
}

/// Marker trait re-exported through the prelude so `use rayon::prelude::*`
/// keeps working; all methods live inherently on [`ParIter`].
pub trait ParallelIterator {}

impl<S: Source> ParallelIterator for ParIter<S> {}

/// Conversion into a parallel iterator (ranges).
pub trait IntoParallelIterator {
    /// The produced item type.
    type Item: Send;
    /// The concrete iterator type.
    type Iter;
    /// Convert.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: RangeIdx> IntoParallelIterator for Range<T> {
    type Item = T;
    type Iter = ParIter<RangeSource<T>>;
    fn into_par_iter(self) -> Self::Iter {
        let len = self.start.distance(self.end);
        par_iter_from(RangeSource {
            start: self.start,
            len,
        })
    }
}

/// Chunk oversubscription factor: more chunks than threads gives the
/// claiming cursor room to rebalance when chunks carry unequal work.
const OVERSUB: usize = 4;

/// Write-once result slots, one per chunk, so dynamically-claimed chunks
/// still land their results in input order.
struct ResultSlots<R> {
    ptr: *mut Option<R>,
}

// SAFETY: each slot index is written by exactly one executor (the chunk
// cursor hands out each index once), and the owning Vec outlives the drive.
unsafe impl<R: Send> Send for ResultSlots<R> {}
unsafe impl<R: Send> Sync for ResultSlots<R> {}

impl<R> ResultSlots<R> {
    /// Store chunk `i`'s result.
    ///
    /// # Safety
    /// `i` is in bounds and no other thread writes slot `i`.
    unsafe fn write(&self, i: usize, value: R) {
        unsafe { *self.ptr.add(i) = Some(value) };
    }
}

impl<S: Source> ParIter<S> {
    /// Chunk `0..len` honoring `with_min_len` / `with_max_len`,
    /// oversubscribing by [`OVERSUB`] beyond the thread count so the claim
    /// cursor can balance.
    fn parts(&self) -> Vec<Range<usize>> {
        let n = self.src.len();
        let threads = current_num_threads().max(1);
        // A max-len cap forces at least this many chunks (e.g. an item
        // list that is already a work partition drives with max_len 1 so
        // every item is its own claim unit).
        let floor = if self.max_len < n.max(1) {
            n.div_ceil(self.max_len.max(1))
        } else {
            1
        };
        if threads == 1 && floor <= 1 {
            return chunk_ranges(n, 1);
        }
        let cap = if self.min_len > 1 {
            (n / self.min_len).max(1)
        } else {
            n
        };
        chunk_ranges(n, (threads * OVERSUB).min(cap).max(floor))
    }

    /// Fan `work` out over the chunks; results come back in chunk order.
    fn drive<R, W>(self, work: W) -> Vec<R>
    where
        R: Send,
        W: Fn(Range<usize>, &S) -> R + Sync,
    {
        self.drive_init(|| (), |(), range, src| work(range, src))
    }

    /// [`drive`](Self::drive) with one lazily-built workspace per
    /// *executor* (not per chunk): executors claim chunks from a shared
    /// atomic cursor and reuse their workspace across every chunk they
    /// claim, so `init` cost is amortized no matter how finely the input
    /// is chunked.
    fn drive_init<T, R, INIT, W>(self, init: INIT, work: W) -> Vec<R>
    where
        R: Send,
        INIT: Fn() -> T + Sync,
        W: Fn(&mut T, Range<usize>, &S) -> R + Sync,
    {
        let parts = self.parts();
        let src = self.src;
        if parts.len() <= 1 {
            let mut ws = init();
            return parts.into_iter().map(|r| work(&mut ws, r, &src)).collect();
        }
        let executors = current_num_threads().max(1).min(parts.len());
        let mut results: Vec<Option<R>> = (0..parts.len()).map(|_| None).collect();
        let slots = ResultSlots {
            ptr: results.as_mut_ptr(),
        };
        let cursor = AtomicUsize::new(0);
        let inherited = override_value();
        let (parts_ref, src_ref, work_ref, init_ref, slots_ref, cursor_ref) =
            (&parts, &src, &work, &init, &slots, &cursor);
        crate::pool::broadcast(executors, inherited, &|_slot| {
            // Workspace is built only if this executor claims a chunk.
            let mut ws: Option<T> = None;
            loop {
                let i = cursor_ref.fetch_add(1, Ordering::Relaxed);
                if i >= parts_ref.len() {
                    break;
                }
                let ws = ws.get_or_insert_with(init_ref);
                let r = work_ref(ws, parts_ref[i].clone(), src_ref);
                // SAFETY: the cursor hands out index `i` exactly once.
                unsafe { slots_ref.write(i, r) };
            }
        });
        results
            .into_iter()
            .map(|o| o.expect("rayon-shim: chunk not executed"))
            .collect()
    }

    /// Hint the minimum number of items a chunk should hold.
    pub fn with_min_len(mut self, min: usize) -> Self {
        self.min_len = min.max(1);
        self
    }

    /// Cap the number of items a chunk may hold (rayon's `with_max_len`):
    /// `with_max_len(1)` makes every item its own dynamically-claimed
    /// unit — used when the items are themselves a precomputed work
    /// partition that must not be re-grouped.
    pub fn with_max_len(mut self, max: usize) -> Self {
        self.max_len = max.max(1);
        self
    }

    /// Lazily transform each item.
    pub fn map<U, F>(self, f: F) -> ParIter<MapSource<S, F>>
    where
        F: Fn(S::Item) -> U + Sync,
        U: Send,
    {
        ParIter {
            src: MapSource { src: self.src, f },
            min_len: self.min_len,
            max_len: self.max_len,
        }
    }

    /// Pair each item with its position.
    pub fn enumerate(self) -> ParIter<EnumerateSource<S>> {
        ParIter {
            src: EnumerateSource { src: self.src },
            min_len: self.min_len,
            max_len: self.max_len,
        }
    }

    /// Pair items positionally with another parallel iterator.
    pub fn zip<B: Source>(self, other: ParIter<B>) -> ParIter<ZipSource<S, B>> {
        ParIter {
            src: ZipSource {
                a: self.src,
                b: other.src,
            },
            min_len: self.min_len.max(other.min_len),
            max_len: self.max_len.min(other.max_len),
        }
    }

    /// Run `op` on every item.
    pub fn for_each<OP>(self, op: OP)
    where
        OP: Fn(S::Item) + Sync,
    {
        self.drive(|range, src| {
            for i in range {
                // SAFETY: ranges are disjoint; each index fetched once.
                op(unsafe { src.get(i) });
            }
        });
    }

    /// Run `op` on every item with per-executor scratch built by `init`
    /// (rayon's thread-private workspace pattern): each executor builds one
    /// workspace and reuses it across every chunk it claims.
    pub fn for_each_init<T, INIT, OP>(self, init: INIT, op: OP)
    where
        INIT: Fn() -> T + Sync,
        OP: Fn(&mut T, S::Item) + Sync,
    {
        self.drive_init(init, |ws, range, src| {
            for i in range {
                // SAFETY: ranges are disjoint; each index fetched once.
                op(ws, unsafe { src.get(i) });
            }
        });
    }

    /// Transform each item with per-chunk scratch built by `init`. Only
    /// `collect` is available on the result (the one use this workspace
    /// has).
    pub fn map_init<T, U, INIT, F>(self, init: INIT, f: F) -> MapInit<S, INIT, F>
    where
        INIT: Fn() -> T + Sync,
        F: Fn(&mut T, S::Item) -> U + Sync,
        U: Send,
    {
        MapInit {
            inner: self,
            init,
            f,
        }
    }

    /// Map each item to a sequential iterator and flatten, preserving
    /// order. Only `collect` is available on the result.
    pub fn flat_map_iter<U, F>(self, f: F) -> FlatMapIter<S, F>
    where
        U: IntoIterator,
        U::Item: Send,
        F: Fn(S::Item) -> U + Sync,
    {
        FlatMapIter { inner: self, f }
    }

    /// Collect items in order.
    pub fn collect<C>(self) -> C
    where
        C: FromParIter<S::Item>,
    {
        C::from_par_iter(self)
    }

    /// Sum the items.
    pub fn sum<Out>(self) -> Out
    where
        Out: Send + std::iter::Sum<S::Item> + std::iter::Sum<Out>,
    {
        self.drive(|range, src| {
            // SAFETY: disjoint ranges.
            range.map(|i| unsafe { src.get(i) }).sum::<Out>()
        })
        .into_iter()
        .sum()
    }

    /// Count the items.
    pub fn count(self) -> usize {
        self.src.len()
    }

    /// Reduce with an identity-producing closure and an associative op.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> S::Item
    where
        ID: Fn() -> S::Item + Sync,
        OP: Fn(S::Item, S::Item) -> S::Item + Sync,
    {
        self.drive(|range, src| {
            let mut acc = identity();
            for i in range {
                // SAFETY: disjoint ranges.
                acc = op(acc, unsafe { src.get(i) });
            }
            acc
        })
        .into_iter()
        .fold(identity(), &op)
    }

    /// Minimum item, if any.
    pub fn min(self) -> Option<S::Item>
    where
        S::Item: Ord,
    {
        self.drive(|range, src| range.map(|i| unsafe { src.get(i) }).min())
            .into_iter()
            .flatten()
            .min()
    }

    /// Maximum item, if any.
    pub fn max(self) -> Option<S::Item>
    where
        S::Item: Ord,
    {
        self.drive(|range, src| range.map(|i| unsafe { src.get(i) }).max())
            .into_iter()
            .flatten()
            .max()
    }

    /// Whether `pred` holds for every item.
    pub fn all<P>(self, pred: P) -> bool
    where
        P: Fn(S::Item) -> bool + Sync,
    {
        self.drive(|range, src| range.into_iter().all(|i| pred(unsafe { src.get(i) })))
            .into_iter()
            .all(|b| b)
    }
}

/// `map_init` pipeline; terminal-only (supports `collect`).
pub struct MapInit<S, INIT, F> {
    inner: ParIter<S>,
    init: INIT,
    f: F,
}

impl<S, T, U, INIT, F> MapInit<S, INIT, F>
where
    S: Source,
    INIT: Fn() -> T + Sync,
    F: Fn(&mut T, S::Item) -> U + Sync,
    U: Send,
{
    /// Collect transformed items in order.
    pub fn collect<C>(self) -> C
    where
        C: From<Vec<U>>,
    {
        let MapInit { inner, init, f } = self;
        let chunks = inner.drive_init(init, |ws, range, src| {
            let mut out = Vec::with_capacity(range.len());
            for i in range {
                // SAFETY: disjoint ranges.
                out.push(f(ws, unsafe { src.get(i) }));
            }
            out
        });
        let mut all = Vec::with_capacity(chunks.iter().map(Vec::len).sum());
        for c in chunks {
            all.extend(c);
        }
        C::from(all)
    }
}

/// `flat_map_iter` pipeline; terminal-only (supports `collect`).
pub struct FlatMapIter<S, F> {
    inner: ParIter<S>,
    f: F,
}

impl<S, U, F> FlatMapIter<S, F>
where
    S: Source,
    U: IntoIterator,
    U::Item: Send,
    F: Fn(S::Item) -> U + Sync,
{
    /// Collect the flattened items in order.
    pub fn collect<C>(self) -> C
    where
        C: From<Vec<U::Item>>,
    {
        let FlatMapIter { inner, f } = self;
        let chunks = inner.drive(|range, src| {
            let mut out = Vec::new();
            for i in range {
                // SAFETY: disjoint ranges.
                out.extend(f(unsafe { src.get(i) }));
            }
            out
        });
        let mut all = Vec::with_capacity(chunks.iter().map(Vec::len).sum());
        for c in chunks {
            all.extend(c);
        }
        C::from(all)
    }
}

/// `collect` target abstraction (rayon's `FromParallelIterator`).
pub trait FromParIter<T>: Sized {
    /// Build the collection from the iterator.
    fn from_par_iter<S: Source<Item = T>>(iter: ParIter<S>) -> Self;
}

impl<T: Send> FromParIter<T> for Vec<T> {
    fn from_par_iter<S: Source<Item = T>>(iter: ParIter<S>) -> Self {
        let chunks = iter.drive(|range, src| {
            let mut out = Vec::with_capacity(range.len());
            for i in range {
                // SAFETY: disjoint ranges.
                out.push(unsafe { src.get(i) });
            }
            out
        });
        let mut all = Vec::with_capacity(chunks.iter().map(Vec::len).sum());
        for c in chunks {
            all.extend(c);
        }
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_map_collect_ordered() {
        let v: Vec<usize> = (0..1000usize).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v.len(), 1000);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i * 2));
    }

    #[test]
    fn sum_matches_sequential() {
        let s: u64 = (0..100_000u64).into_par_iter().sum();
        assert_eq!(s, (0..100_000u64).sum());
    }

    #[test]
    fn enumerate_zip_for_each() {
        let n = 257;
        let mut out = vec![0usize; n];
        {
            use crate::slice::ParallelSliceMut;
            out.par_iter_mut()
                .enumerate()
                .for_each(|(i, slot)| *slot = i + 1);
        }
        assert!(out.iter().enumerate().all(|(i, &x)| x == i + 1));
    }

    #[test]
    fn map_init_collect() {
        let v: Vec<usize> = (0..500usize)
            .into_par_iter()
            .with_min_len(16)
            .map_init(|| 7usize, |state, i| i + *state)
            .collect();
        assert!(v.iter().enumerate().all(|(i, &x)| x == i + 7));
    }

    #[test]
    fn reduce_and_minmax() {
        let m = (0..100usize).into_par_iter().reduce(|| 0, |a, b| a.max(b));
        assert_eq!(m, 99);
        assert_eq!((5..50u32).into_par_iter().min(), Some(5));
        assert_eq!((5..50u32).into_par_iter().max(), Some(49));
        assert_eq!((0..10usize).into_par_iter().count(), 10);
    }
}
