//! Offline stand-in for [rayon](https://crates.io/crates/rayon).
//!
//! The build environment for this workspace has no crates.io access, so this
//! crate re-implements exactly the subset of rayon's API the workspace uses,
//! with the same semantics: `ThreadPool::install` scopes a thread-count
//! override, and all combinators preserve input order so results are
//! bit-identical to sequential execution.
//!
//! Parallel drives run on a **persistent worker pool** (`pool` module): the
//! first drive lazily spawns parked workers, and every later drive wakes
//! them with a published job instead of spawning threads — steady state is
//! spawn-free. Within a drive, the input is split into contiguous chunks
//! (oversubscribed a few × beyond the thread count) that executors claim
//! through a shared atomic cursor — guided self-scheduling, the
//! shared-memory cousin of work stealing — so imbalanced chunks migrate to
//! whichever thread is free rather than pinning their original owner.
//! `for_each_init` / `map_init` build one workspace per *executor* and
//! reuse it across every chunk that executor claims.
//!
//! Supported surface:
//!
//! * `prelude::*` — [`iter::IntoParallelIterator`] for ranges,
//!   [`slice::ParallelSlice`] / [`slice::ParallelSliceMut`] for `par_iter`,
//!   `par_iter_mut`, `par_chunks`, `par_chunks_mut`;
//! * combinators `map`, `map_init`, `enumerate`, `zip`, `with_min_len`;
//! * terminals `for_each`, `for_each_init`, `collect` (into `Vec`), `sum`,
//!   `reduce`, `count`, `min`, `max`;
//! * [`scope`] with `Scope::spawn`;
//! * [`ThreadPoolBuilder`] / [`ThreadPool::install`] /
//!   [`current_num_threads`].
//!
//! Not a general rayon replacement: no task-granularity stealing (balance
//! comes from chunk claiming), no parallel sorts; [`scope`] / [`join`]
//! still use scoped threads (they are off the row-loop hot path).

#![warn(missing_docs)]

use std::cell::Cell;
use std::ops::Range;

pub mod iter;
pub(crate) mod pool;
pub mod slice;

/// One-stop imports mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::iter::{IntoParallelIterator, ParallelIterator};
    pub use crate::slice::{ParallelSlice, ParallelSliceMut};
}

thread_local! {
    /// Thread-count override installed by [`ThreadPool::install`];
    /// 0 means "no override".
    static CURRENT_OVERRIDE: Cell<usize> = const { Cell::new(0) };
}

/// The number of threads parallel drives will fan out to: the installed
/// pool's size if inside [`ThreadPool::install`], else the machine's
/// available parallelism.
pub fn current_num_threads() -> usize {
    let o = CURRENT_OVERRIDE.with(|c| c.get());
    if o > 0 {
        o
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

pub(crate) fn with_override<R>(n: usize, f: impl FnOnce() -> R) -> R {
    CURRENT_OVERRIDE.with(|c| {
        let prev = c.get();
        c.set(n);
        let out = f();
        c.set(prev);
        out
    })
}

pub(crate) fn override_value() -> usize {
    CURRENT_OVERRIDE.with(|c| c.get())
}

/// Split `0..n` into at most `parts` contiguous near-equal ranges.
pub(crate) fn chunk_ranges(n: usize, parts: usize) -> Vec<Range<usize>> {
    if n == 0 {
        return Vec::new();
    }
    let parts = parts.clamp(1, n);
    let base = n / parts;
    let extra = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0usize;
    for p in 0..parts {
        let len = base + usize::from(p < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Error from [`ThreadPoolBuilder::build`]. Never actually produced; kept
/// for signature compatibility.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// A builder with default settings (all available threads).
    pub fn new() -> Self {
        Self::default()
    }

    /// Cap the pool at `n` threads (0 = all available).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Build the pool. Infallible in this shim.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.num_threads
        };
        Ok(ThreadPool { num_threads: n })
    }
}

/// A sized "pool". This shim spawns scoped threads on demand rather than
/// keeping workers alive; the pool only pins the fan-out width.
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Run `f` with this pool's thread count governing every parallel
    /// drive (and [`current_num_threads`]) on this thread.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        with_override(self.num_threads, f)
    }

    /// The pool's thread count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

/// A scope for spawning borrowed tasks, mirroring `rayon::scope`.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a task that may borrow from the enclosing scope. The closure
    /// receives the scope again (rayon convention) for nested spawns.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope, 'env>) + Send + 'scope,
    {
        let inner = self.inner;
        let inherited = override_value();
        inner.spawn(move || {
            with_override(inherited, || {
                let s = Scope { inner };
                f(&s);
            })
        });
    }
}

/// Create a scope in which borrowed tasks can be spawned; blocks until all
/// spawned tasks finish.
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::thread::scope(|s| {
        let wrapper = Scope { inner: s };
        f(&wrapper)
    })
}

/// Run `a` and `b`, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        return (a(), b());
    }
    let inherited = override_value();
    std::thread::scope(|s| {
        let hb = s.spawn(move || with_override(inherited, b));
        let ra = a();
        (ra, hb.join().expect("rayon-shim: joined task panicked"))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_ranges_cover() {
        for n in [0usize, 1, 7, 100] {
            for p in [1usize, 3, 8, 200] {
                let rs = chunk_ranges(n, p);
                assert_eq!(rs.iter().map(|r| r.len()).sum::<usize>(), n);
            }
        }
    }

    #[test]
    fn install_overrides_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.install(current_num_threads), 3);
    }

    #[test]
    fn scope_spawn_runs_everything() {
        let mut hits = [false; 8];
        {
            let cells: Vec<_> = hits.iter_mut().collect();
            scope(|s| {
                for c in cells {
                    s.spawn(move |_| *c = true);
                }
            });
        }
        assert!(hits.iter().all(|&b| b));
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn pool_workers_observe_install_override() {
        // Regression: the install override lives in a thread_local Cell;
        // persistent pool workers are *different threads*, so the job must
        // carry the installing thread's effective count explicitly.
        use crate::iter::IntoParallelIterator;
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let seen: Vec<usize> = pool.install(|| {
            (0..256usize)
                .into_par_iter()
                .map(|_| current_num_threads())
                .collect()
        });
        assert!(
            seen.iter().all(|&n| n == 3),
            "a drive chunk ran without the installed override: {seen:?}"
        );
    }

    #[test]
    fn nested_install_overrides_nest_and_restore() {
        use crate::iter::IntoParallelIterator;
        let outer = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let inner = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        outer.install(|| {
            assert_eq!(current_num_threads(), 4);
            inner.install(|| {
                assert_eq!(current_num_threads(), 2);
                let seen: Vec<usize> = (0..64usize)
                    .into_par_iter()
                    .map(|_| current_num_threads())
                    .collect();
                assert!(
                    seen.iter().all(|&n| n == 2),
                    "inner install leaked: {seen:?}"
                );
            });
            // Back under the outer override — including on pool workers.
            assert_eq!(current_num_threads(), 4);
            let seen: Vec<usize> = (0..64usize)
                .into_par_iter()
                .map(|_| current_num_threads())
                .collect();
            assert!(seen.iter().all(|&n| n == 4), "outer install lost: {seen:?}");
        });
        assert_eq!(override_value(), 0, "override must fully unwind");
    }

    #[test]
    fn nested_parallel_drives_complete() {
        use crate::iter::IntoParallelIterator;
        // Inner drives issued from worker threads fall back to inline
        // execution; the totals must still be exact.
        let sums: Vec<u64> = (0..16u64)
            .into_par_iter()
            .map(|i| (0..1000u64).into_par_iter().map(|j| j + i).sum::<u64>())
            .collect();
        for (i, s) in sums.iter().enumerate() {
            assert_eq!(*s, 499_500 + 1000 * i as u64);
        }
    }

    #[test]
    fn drive_panic_propagates() {
        use crate::iter::IntoParallelIterator;
        let caught = std::panic::catch_unwind(|| {
            (0..1000usize).into_par_iter().for_each(|i| {
                assert!(i != 617, "worker chunk panic");
            });
        });
        assert!(caught.is_err());
    }
}
