//! Parallel views over slices: `par_iter`, `par_iter_mut`, `par_chunks`,
//! `par_chunks_mut`.

use crate::iter::{par_iter_from, ParIter, Source};
use std::marker::PhantomData;

/// Shared-slice source (`Item = &T`).
pub struct SliceSource<'a, T> {
    slice: &'a [T],
}

unsafe impl<'a, T: Sync> Source for SliceSource<'a, T> {
    type Item = &'a T;
    fn len(&self) -> usize {
        self.slice.len()
    }
    unsafe fn get(&self, i: usize) -> &'a T {
        // SAFETY: caller guarantees i < len.
        unsafe { self.slice.get_unchecked(i) }
    }
}

/// Mutable-slice source (`Item = &mut T`). Raw-pointer based: each index is
/// fetched at most once (the [`Source`] contract), so the exclusive
/// references handed out never alias.
pub struct SliceMutSource<'a, T> {
    ptr: *mut T,
    len: usize,
    _life: PhantomData<&'a mut T>,
}

unsafe impl<T: Send> Sync for SliceMutSource<'_, T> {}

unsafe impl<'a, T: Send> Source for SliceMutSource<'a, T> {
    type Item = &'a mut T;
    fn len(&self) -> usize {
        self.len
    }
    unsafe fn get(&self, i: usize) -> &'a mut T {
        debug_assert!(i < self.len);
        // SAFETY: i < len and each index is produced exactly once, so this
        // exclusive reference is unique.
        unsafe { &mut *self.ptr.add(i) }
    }
}

/// Shared chunked source (`Item = &[T]`, last chunk may be short).
pub struct ChunksSource<'a, T> {
    slice: &'a [T],
    chunk: usize,
}

unsafe impl<'a, T: Sync> Source for ChunksSource<'a, T> {
    type Item = &'a [T];
    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.chunk)
    }
    unsafe fn get(&self, i: usize) -> &'a [T] {
        let start = i * self.chunk;
        let end = (start + self.chunk).min(self.slice.len());
        &self.slice[start..end]
    }
}

/// Mutable chunked source (`Item = &mut [T]`).
pub struct ChunksMutSource<'a, T> {
    ptr: *mut T,
    len: usize,
    chunk: usize,
    _life: PhantomData<&'a mut T>,
}

unsafe impl<T: Send> Sync for ChunksMutSource<'_, T> {}

unsafe impl<'a, T: Send> Source for ChunksMutSource<'a, T> {
    type Item = &'a mut [T];
    fn len(&self) -> usize {
        self.len.div_ceil(self.chunk)
    }
    unsafe fn get(&self, i: usize) -> &'a mut [T] {
        let start = i * self.chunk;
        let end = (start + self.chunk).min(self.len);
        // SAFETY: chunks are pairwise disjoint and each is produced once.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.add(start), end - start) }
    }
}

/// `par_iter` / `par_chunks` on shared slices.
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over `&T`.
    fn par_iter(&self) -> ParIter<SliceSource<'_, T>>;
    /// Parallel iterator over `chunk`-sized pieces (last may be short).
    fn par_chunks(&self, chunk: usize) -> ParIter<ChunksSource<'_, T>>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<SliceSource<'_, T>> {
        par_iter_from(SliceSource { slice: self })
    }
    fn par_chunks(&self, chunk: usize) -> ParIter<ChunksSource<'_, T>> {
        assert!(chunk > 0, "par_chunks: chunk size must be non-zero");
        par_iter_from(ChunksSource { slice: self, chunk })
    }
}

/// `par_iter_mut` / `par_chunks_mut` on mutable slices.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over `&mut T`.
    fn par_iter_mut(&mut self) -> ParIter<SliceMutSource<'_, T>>;
    /// Parallel iterator over disjoint `chunk`-sized mutable pieces.
    fn par_chunks_mut(&mut self, chunk: usize) -> ParIter<ChunksMutSource<'_, T>>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> ParIter<SliceMutSource<'_, T>> {
        par_iter_from(SliceMutSource {
            ptr: self.as_mut_ptr(),
            len: self.len(),
            _life: PhantomData,
        })
    }
    fn par_chunks_mut(&mut self, chunk: usize) -> ParIter<ChunksMutSource<'_, T>> {
        assert!(chunk > 0, "par_chunks_mut: chunk size must be non-zero");
        par_iter_from(ChunksMutSource {
            ptr: self.as_mut_ptr(),
            len: self.len(),
            chunk,
            _life: PhantomData,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iter::IntoParallelIterator;

    #[test]
    fn par_iter_reads_all() {
        let v: Vec<u64> = (0..1000).collect();
        let s: u64 = v.par_iter().map(|&x| x).sum();
        assert_eq!(s, 499_500);
    }

    #[test]
    fn par_iter_mut_writes_disjoint() {
        let mut v = vec![0u32; 513];
        v.par_iter_mut()
            .enumerate()
            .for_each(|(i, x)| *x = i as u32);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i as u32));
    }

    #[test]
    fn par_chunks_sees_every_element_once() {
        let v: Vec<usize> = (0..1001).collect();
        let totals: Vec<usize> = v.par_chunks(64).map(|c| c.iter().sum()).collect();
        assert_eq!(totals.iter().sum::<usize>(), (0..1001).sum::<usize>());
        assert_eq!(totals.len(), 1001usize.div_ceil(64));
    }

    #[test]
    fn par_chunks_mut_zip_matches_layout() {
        let n = 300;
        let src: Vec<usize> = (0..n).collect();
        let mut dst = vec![0usize; n];
        dst.par_chunks_mut(32)
            .zip(src.par_chunks(32))
            .enumerate()
            .for_each(|(ci, (d, s))| {
                for (x, &y) in d.iter_mut().zip(s) {
                    *x = y + ci;
                }
            });
        for (i, &x) in dst.iter().enumerate() {
            assert_eq!(x, i + i / 32);
        }
    }

    #[test]
    fn ranges_still_work_alongside_slices() {
        let s: usize = (0..10usize).into_par_iter().sum();
        assert_eq!(s, 45);
    }
}
