//! The persistent worker pool behind every parallel drive.
//!
//! The first parallel drive lazily spawns a set of detached worker threads
//! that park on a condvar; every later drive publishes a *job* to a shared
//! queue and wakes them, so steady-state execution performs **zero thread
//! spawns** — the fork/join tax of `std::thread::scope` (stack setup, TLS
//! init, scheduler wake-up, join teardown) is paid once per process instead
//! of once per call. Iterative workloads (k-truss, BC) that issue thousands
//! of row-parallel drives are the beneficiaries.
//!
//! ## Job anatomy
//!
//! A job is a lifetime-erased executor body `Fn(slot)` plus `executors`
//! slots. Slot 0 always runs on the submitting thread — a drive makes
//! progress even if every worker is busy with other jobs — and workers
//! claim the remaining slots through a ticket counter under the queue lock.
//! The body itself loops over an atomic chunk cursor (see
//! [`crate::iter`]), so a job completes no matter how many of its slots are
//! actually picked up; [`broadcast`] cancels untaken slots once the
//! submitting thread runs out of chunks and waits for in-flight workers
//! before returning, which is what makes the lifetime erasure sound.
//!
//! ## Semantics preserved
//!
//! * **Override inheritance** — each job snapshots the submitting thread's
//!   [`ThreadPool::install`](crate::ThreadPool::install) override and
//!   workers run the body under it, so `current_num_threads()` and nested
//!   drives observe the installing thread's thread count (the effective
//!   fan-out travels with the job; it is not re-derived on the worker).
//! * **Panics** — a panicking body is caught on the worker, the first
//!   payload is stored, and `broadcast` resumes the unwind on the
//!   submitting thread after all slots settle, matching what
//!   `JoinHandle::join` + `resume_unwind` did before.
//! * **No nested-drive deadlock** — a drive issued from inside a worker
//!   runs its slots inline on that worker instead of re-entering the pool.

use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

type PanicPayload = Box<dyn std::any::Any + Send + 'static>;

/// One published parallel drive.
struct Job {
    /// The executor body, lifetime-erased. [`broadcast`] keeps the real
    /// closure alive until `remaining` reaches zero, so dereferencing from
    /// a worker is sound.
    body: *const (dyn Fn(usize) + Sync),
    /// Total executor slots, including slot 0 (the submitting thread).
    executors: usize,
    /// Next slot to hand to a worker (starts at 1; slot 0 is the caller's).
    /// Only mutated under the pool queue lock.
    next_slot: AtomicUsize,
    /// Slots not yet finished or cancelled; guarded for the `done` condvar.
    remaining: Mutex<usize>,
    /// Signalled when `remaining` reaches zero.
    done: Condvar,
    /// The submitting thread's `install` override, inherited by workers.
    inherited: usize,
    /// First panic payload from any slot.
    panic: Mutex<Option<PanicPayload>>,
}

// SAFETY: the raw body pointer is only dereferenced while `broadcast` is
// blocked keeping the underlying closure alive, and the closure is `Sync`.
unsafe impl Send for Job {}
unsafe impl Sync for Job {}

impl Job {
    /// Mark `n` slots finished; wake the submitter when all have settled.
    fn finish_slots(&self, n: usize) {
        if n == 0 {
            return;
        }
        let mut rem = self.remaining.lock().unwrap();
        *rem -= n;
        if *rem == 0 {
            self.done.notify_all();
        }
    }
}

/// Pool state shared by the workers and every submitting thread.
struct PoolShared {
    /// Jobs with unclaimed slots, oldest first.
    queue: Mutex<VecDeque<Arc<Job>>>,
    /// Signalled when the queue gains a job.
    work_ready: Condvar,
    /// Number of workers spawned so far.
    spawned: AtomicUsize,
}

fn pool() -> &'static Arc<PoolShared> {
    static POOL: OnceLock<Arc<PoolShared>> = OnceLock::new();
    POOL.get_or_init(|| {
        Arc::new(PoolShared {
            queue: Mutex::new(VecDeque::new()),
            work_ready: Condvar::new(),
            spawned: AtomicUsize::new(0),
        })
    })
}

thread_local! {
    /// Whether the current thread is a pool worker (nested drives from a
    /// worker run inline instead of re-entering the pool).
    static IS_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Whether the current thread is one of the pool's workers.
pub(crate) fn is_pool_worker() -> bool {
    IS_WORKER.with(|c| c.get())
}

/// Upper bound on pool size: generous oversubscription so explicit
/// `--threads N > cores` experiments still get N-way fan-out, without
/// letting a pathological request spawn unbounded threads.
fn worker_cap() -> usize {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    (cores * 4).max(32)
}

/// Spawn detached workers until at least `wanted` exist (capped).
fn ensure_workers(shared: &'static Arc<PoolShared>, wanted: usize) {
    let wanted = wanted.min(worker_cap());
    loop {
        let cur = shared.spawned.load(Ordering::Relaxed);
        if cur >= wanted {
            return;
        }
        if shared
            .spawned
            .compare_exchange(cur, cur + 1, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
        {
            let shared = Arc::clone(shared);
            std::thread::Builder::new()
                .name(format!("mspgemm-pool-{cur}"))
                .spawn(move || worker_loop(shared))
                .expect("rayon-shim: failed to spawn pool worker");
        }
    }
}

/// Worker main: park until a job has unclaimed slots, claim one, run it.
fn worker_loop(shared: Arc<PoolShared>) {
    IS_WORKER.with(|c| c.set(true));
    loop {
        let (job, slot) = {
            let mut q = shared.queue.lock().unwrap();
            loop {
                if let Some(front) = q.front() {
                    let job = Arc::clone(front);
                    // Hand out the next slot under the queue lock so slot
                    // handout cannot race `broadcast`'s cancellation.
                    let slot = job.next_slot.fetch_add(1, Ordering::Relaxed);
                    debug_assert!(slot < job.executors, "job left in queue with no slots");
                    if slot + 1 >= job.executors {
                        q.pop_front();
                    }
                    break (job, slot);
                }
                q = shared.work_ready.wait(q).unwrap();
            }
        };
        run_slot(&job, slot);
    }
}

/// Run one executor slot of a job, capturing panics.
fn run_slot(job: &Job, slot: usize) {
    // SAFETY: `broadcast` does not return (and therefore the body is not
    // dropped) until this slot is counted finished below.
    let body = unsafe { &*job.body };
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        crate::with_override(job.inherited, || body(slot));
    }));
    if let Err(payload) = result {
        let mut p = job.panic.lock().unwrap();
        if p.is_none() {
            *p = Some(payload);
        }
    }
    job.finish_slots(1);
}

/// Cancels untaken slots and waits out in-flight workers; runs on both the
/// normal path and when the submitting thread's own slot panics, so the
/// erased body is never freed while a worker can still reach it.
struct CompletionGuard<'a> {
    shared: &'static PoolShared,
    job: &'a Arc<Job>,
}

impl Drop for CompletionGuard<'_> {
    fn drop(&mut self) {
        let untaken = {
            let mut q = self.shared.queue.lock().unwrap();
            if let Some(pos) = q.iter().position(|j| Arc::ptr_eq(j, self.job)) {
                q.remove(pos);
            }
            let taken = self.job.next_slot.load(Ordering::Relaxed);
            let untaken = self.job.executors - taken;
            self.job
                .next_slot
                .store(self.job.executors, Ordering::Relaxed);
            untaken
        };
        // The submitter's slot 0 plus every slot no worker will ever take.
        self.job.finish_slots(untaken + 1);
        let mut rem = self.job.remaining.lock().unwrap();
        while *rem > 0 {
            rem = self.job.done.wait(rem).unwrap();
        }
    }
}

/// Run `body(slot)` for every slot in `0..executors`, slot 0 on the calling
/// thread and the rest on pool workers, under the given thread-count
/// override. Returns when every slot has settled; re-raises the first
/// panic. The body must tolerate any subset of slots `1..` never running
/// (chunk-claiming bodies do: the claim loop drains the work regardless).
pub(crate) fn broadcast(executors: usize, inherited: usize, body: &(dyn Fn(usize) + Sync)) {
    if executors <= 1 || is_pool_worker() {
        // Degenerate or nested-in-worker drive: run every slot inline.
        // Slot 0's claim loop drains the chunks; later slots no-op.
        for slot in 0..executors.max(1) {
            body(slot);
        }
        return;
    }
    let shared = pool();
    ensure_workers(shared, executors - 1);
    // SAFETY (lifetime erasure): the Job never outlives this function's
    // borrow of `body` — the CompletionGuard blocks until every slot that
    // could touch it has finished.
    let erased: *const (dyn Fn(usize) + Sync) = unsafe {
        std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(body)
    };
    let job = Arc::new(Job {
        body: erased,
        executors,
        next_slot: AtomicUsize::new(1),
        remaining: Mutex::new(executors),
        done: Condvar::new(),
        inherited,
        panic: Mutex::new(None),
    });
    {
        let guard = CompletionGuard { shared, job: &job };
        {
            let mut q = guard.shared.queue.lock().unwrap();
            q.push_back(Arc::clone(&job));
        }
        guard.shared.work_ready.notify_all();
        body(0);
        // Guard drop: cancel untaken slots, wait for in-flight workers.
    }
    let payload = job.panic.lock().unwrap().take();
    if let Some(payload) = payload {
        std::panic::resume_unwind(payload);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn all_chunks_execute_once() {
        let n = 1000;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        let cursor = AtomicUsize::new(0);
        broadcast(4, 0, &|_slot| loop {
            let i = cursor.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                break;
            }
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn single_executor_runs_inline() {
        let ran = AtomicUsize::new(0);
        broadcast(1, 0, &|slot| {
            assert_eq!(slot, 0);
            ran.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ran.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn workers_inherit_override() {
        let seen = Mutex::new(Vec::new());
        broadcast(3, 7, &|slot| {
            seen.lock()
                .unwrap()
                .push((slot, crate::current_num_threads()));
        });
        // Worker slots (1..) must see the inherited override (7). Slot 0
        // runs on the submitting thread, whose own override state (none
        // here) is authoritative, so it is exempt.
        let seen = seen.lock().unwrap();
        assert!(seen.iter().any(|&(slot, _)| slot == 0));
        for &(slot, n) in seen.iter() {
            if slot > 0 {
                assert_eq!(n, 7, "worker slot {slot} missed the override");
            }
        }
    }

    #[test]
    fn panics_propagate_after_settling() {
        let result = std::panic::catch_unwind(|| {
            let cursor = AtomicUsize::new(0);
            broadcast(4, 0, &|_slot| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= 64 {
                    break;
                }
                if i == 33 {
                    panic!("chunk 33 exploded");
                }
            });
        });
        let payload = result.unwrap_err();
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "chunk 33 exploded");
    }

    #[test]
    fn sequential_fallback_when_nested_in_worker() {
        // A body that itself broadcasts: the inner drive must complete
        // (inline on the worker) rather than deadlock.
        let total = AtomicUsize::new(0);
        let outer_cursor = AtomicUsize::new(0);
        broadcast(4, 0, &|_slot| loop {
            let i = outer_cursor.fetch_add(1, Ordering::Relaxed);
            if i >= 8 {
                break;
            }
            let inner_cursor = AtomicUsize::new(0);
            broadcast(4, 0, &|_s| loop {
                let j = inner_cursor.fetch_add(1, Ordering::Relaxed);
                if j >= 10 {
                    break;
                }
                total.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 80);
    }

    #[test]
    fn many_sequential_jobs_reuse_the_pool() {
        for _ in 0..50 {
            let cursor = AtomicUsize::new(0);
            let sum = AtomicUsize::new(0);
            broadcast(4, 0, &|_slot| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= 100 {
                    break;
                }
                sum.fetch_add(i, Ordering::Relaxed);
            });
            assert_eq!(sum.load(Ordering::Relaxed), 4950);
        }
        // Spawn-per-call would have created 150 workers for 50 four-way
        // drives; the persistent pool never exceeds its machine-derived
        // cap, no matter what sibling tests run concurrently.
        let after = pool().spawned.load(Ordering::Relaxed);
        assert!(
            after <= worker_cap(),
            "pool grew past its cap: {after} > {}",
            worker_cap()
        );
    }

    #[test]
    fn concurrent_submitters_all_complete() {
        std::thread::scope(|s| {
            for t in 0..4 {
                s.spawn(move || {
                    let cursor = AtomicUsize::new(0);
                    let sum = AtomicUsize::new(0);
                    broadcast(3, 0, &|_slot| loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= 500 {
                            break;
                        }
                        sum.fetch_add(i + t, Ordering::Relaxed);
                    });
                    assert_eq!(sum.load(Ordering::Relaxed), 500 * 499 / 2 + 500 * t);
                });
            }
        });
    }
}
