//! Offline stand-in for [proptest](https://crates.io/crates/proptest).
//!
//! Implements the subset this workspace uses: the [`Strategy`] trait with
//! `prop_map`, range strategies over the primitive numeric types,
//! [`collection::vec`], [`option::weighted`], [`prelude::ProptestConfig`],
//! and the [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] macros.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking** — a failing case reports its seed/case number but is
//!   not minimized.
//! * **Fixed deterministic seeding** — each test function derives its RNG
//!   from a hash of the test name, so failures reproduce across runs.
//! * Only `Vec` collections and fixed sizes are supported.

#![warn(missing_docs)]

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// The RNG driving value generation.
pub type TestRng = SmallRng;

/// Re-export so generated code can name the rand traits.
pub use rand::Rng as __Rng;

/// A failed property; carries the assertion message.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Result type property bodies evaluate to.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A recipe for generating values of `Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// `Just`-style constant strategy.
#[derive(Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Sizes accepted by [`vec()`]: a fixed length or a length range.
    pub trait SizeRange {
        /// Draw a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            use rand::Rng;
            rng.gen_range(self.clone())
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            use rand::Rng;
            rng.gen_range(self.clone())
        }
    }

    /// Strategy for `Vec<S::Value>` of the given size.
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// A vector whose elements are drawn from `element` and whose length
    /// is drawn from `len`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Option strategies.
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy producing `Some` with a fixed probability.
    pub struct Weighted<S> {
        probability: f64,
        inner: S,
    }

    /// `Some(value)` with probability `probability`, else `None`.
    pub fn weighted<S: Strategy>(probability: f64, inner: S) -> Weighted<S> {
        assert!(
            (0.0..=1.0).contains(&probability),
            "option::weighted probability out of range"
        );
        Weighted { probability, inner }
    }

    impl<S: Strategy> Strategy for Weighted<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            use rand::Rng;
            if rng.gen_bool(self.probability) {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

/// Per-`proptest!` block configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config with the given case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Stable per-test seed so failures reproduce run to run (FNV-1a).
pub fn seed_for(test_name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Derive the RNG for one case of one test.
pub fn rng_for(test_name: &str, case: u32) -> TestRng {
    TestRng::seed_from_u64(seed_for(test_name) ^ ((case as u64) << 32))
}

/// The common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
        TestCaseError, TestCaseResult,
    };
}

/// Fallible assertion for property bodies.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {} at {}:{}",
                stringify!($cond),
                file!(),
                line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {} ({}) at {}:{}",
                stringify!($cond),
                format!($($fmt)*),
                file!(),
                line!()
            )));
        }
    };
}

/// Fallible equality assertion for property bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n at {}:{}",
                stringify!($left), stringify!($right), l, r, file!(), line!()
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError(format!(
                "assertion failed: `{} == {}` ({})\n  left: {:?}\n right: {:?}\n at {}:{}",
                stringify!($left), stringify!($right), format!($($fmt)*), l, r, file!(), line!()
            )));
        }
    }};
}

/// Fallible inequality assertion for property bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::TestCaseError(format!(
                "assertion failed: `{} != {}`\n  both: {:?}\n at {}:{}",
                stringify!($left),
                stringify!($right),
                l,
                file!(),
                line!()
            )));
        }
    }};
}

/// The property-test macro. Each function body runs `config.cases` times
/// with fresh random inputs drawn from the argument strategies.
#[macro_export]
macro_rules! proptest {
    // With a leading #![proptest_config(...)] attribute.
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                $crate::__run_cases(stringify!($name), config, |__rng| {
                    $(let $arg = $crate::Strategy::generate(&($strat), __rng);)*
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                });
            }
        )*
    };
    // Without a config attribute (default 256 cases).
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),*) $body
            )*
        }
    };
}

/// Driver behind [`proptest!`]; not public API.
#[doc(hidden)]
pub fn __run_cases(
    name: &str,
    config: ProptestConfig,
    mut case: impl FnMut(&mut TestRng) -> TestCaseResult,
) {
    for i in 0..config.cases {
        let mut rng = rng_for(name, i);
        if let Err(e) = case(&mut rng) {
            panic!(
                "proptest case {i}/{} for `{name}` failed: {e}",
                config.cases
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in -5i64..=5, y in 0usize..10) {
            prop_assert!((-5..=5).contains(&x));
            prop_assert!(y < 10);
        }

        #[test]
        fn vec_strategy_sizes(v in crate::collection::vec(0u32..100, 7usize)) {
            prop_assert_eq!(v.len(), 7);
            prop_assert!(v.iter().all(|&x| x < 100));
        }

        #[test]
        fn weighted_none_and_some(v in crate::collection::vec(crate::option::weighted(0.5, 0i64..10), 64usize)) {
            let some = v.iter().filter(|o| o.is_some()).count();
            // 64 draws at p=0.5: catastrophically skewed only if broken.
            prop_assert!(some > 10 && some < 54, "{} Some of 64", some);
        }

        #[test]
        fn prop_map_applies(n in (1usize..50).prop_map(|x| x * 2)) {
            prop_assert!(n % 2 == 0);
            prop_assert!((2..100).contains(&n));
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0u64..1000) {
            prop_assert!(x < 1000);
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        let a: Vec<u64> = (0..5).map(|i| crate::rng_for("t", i).next_u64()).collect();
        let b: Vec<u64> = (0..5).map(|i| crate::rng_for("t", i).next_u64()).collect();
        assert_eq!(a, b);
        use rand::RngCore;
        let c = crate::rng_for("other", 0).next_u64();
        assert_ne!(a[0], c);
    }
}
