//! Dolan-Moré performance profiles \[20\] — the paper's primary comparison
//! device (Figs 8, 9, 12, 13, 16). A point `(x, y)` on a scheme's curve
//! means: on a fraction `y` of the test cases, the scheme's runtime was
//! within a factor `x` of the best scheme for that case.
//!
//! Also home to the per-thread **busy-time spread** ([`BusySpread`]): the
//! max/mean figure over per-thread busy seconds that quantifies how well a
//! row schedule balanced the load (1.0 = perfect; the static schedule on a
//! skewed input approaches the thread count).

/// One scheme's runtimes across a common set of test cases.
#[derive(Clone, Debug)]
pub struct SchemeRuns {
    /// Scheme label (e.g. `MSA-1P`).
    pub name: String,
    /// Runtime (seconds) per test case; `None` = did not run / timed out.
    pub seconds: Vec<Option<f64>>,
}

/// A performance profile: for each scheme, the fraction of cases within
/// each ratio-to-best threshold.
pub struct PerfProfile {
    /// Ratio thresholds (the x axis), ascending, starting at 1.0.
    pub taus: Vec<f64>,
    /// `(name, fraction-within-tau per tau)` per scheme.
    pub curves: Vec<(String, Vec<f64>)>,
}

/// Build a profile from per-case runtimes.
///
/// For each case, the best time over all schemes that ran defines ratio 1;
/// a scheme absent on a case never counts as "within" any threshold.
/// Panics if schemes disagree on the case count or no case has any run.
pub fn performance_profile(runs: &[SchemeRuns], taus: &[f64]) -> PerfProfile {
    assert!(!runs.is_empty(), "no schemes");
    let ncases = runs[0].seconds.len();
    assert!(
        runs.iter().all(|r| r.seconds.len() == ncases),
        "ragged case counts"
    );
    assert!(ncases > 0, "no test cases");
    // Best time per case.
    let best: Vec<f64> = (0..ncases)
        .map(|c| {
            runs.iter()
                .filter_map(|r| r.seconds[c])
                .fold(f64::INFINITY, f64::min)
        })
        .collect();
    let curves = runs
        .iter()
        .map(|r| {
            let fractions = taus
                .iter()
                .map(|&tau| {
                    let within = (0..ncases)
                        .filter(|&c| {
                            best[c].is_finite()
                                && r.seconds[c].is_some_and(|t| t <= tau * best[c] * (1.0 + 1e-12))
                        })
                        .count();
                    within as f64 / ncases as f64
                })
                .collect();
            (r.name.clone(), fractions)
        })
        .collect();
    PerfProfile {
        taus: taus.to_vec(),
        curves,
    }
}

/// Load-imbalance summary over per-thread busy seconds.
#[derive(Clone, Copy, Debug)]
pub struct BusySpread {
    /// Threads that recorded any busy time.
    pub threads: usize,
    /// Busiest thread's seconds.
    pub max: f64,
    /// Mean busy seconds across participating threads.
    pub mean: f64,
}

impl BusySpread {
    /// `max / mean` — 1.0 is perfectly balanced; the wall-clock cost of
    /// imbalance, since the drive ends when the busiest thread does.
    pub fn ratio(&self) -> f64 {
        if self.mean > 0.0 {
            self.max / self.mean
        } else {
            1.0
        }
    }
}

/// Summarize per-thread busy seconds (e.g. from
/// `masked_spgemm::ExecStats::busy_seconds`) into a [`BusySpread`].
/// Returns `None` when nothing was recorded.
pub fn busy_spread(busy: &[f64]) -> Option<BusySpread> {
    if busy.is_empty() {
        return None;
    }
    let max = busy.iter().copied().fold(0.0f64, f64::max);
    let mean = busy.iter().sum::<f64>() / busy.len() as f64;
    Some(BusySpread {
        threads: busy.len(),
        max,
        mean,
    })
}

/// The x-axis the paper plots: 1.0 to `max` in steps of `step`.
pub fn default_taus(max: f64, step: f64) -> Vec<f64> {
    let mut taus = Vec::new();
    let mut t = 1.0;
    while t <= max + 1e-9 {
        taus.push(t);
        t += step;
    }
    taus
}

impl PerfProfile {
    /// Render as CSV: `tau, scheme1, scheme2, ...` — the series the paper
    /// plots.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("tau");
        for (name, _) in &self.curves {
            out.push(',');
            out.push_str(name);
        }
        out.push('\n');
        for (i, tau) in self.taus.iter().enumerate() {
            out.push_str(&format!("{tau:.2}"));
            for (_, fr) in &self.curves {
                out.push_str(&format!(",{:.4}", fr[i]));
            }
            out.push('\n');
        }
        out
    }

    /// Fraction of cases where `name` is (tied-)best — its y-intercept at
    /// τ = 1.
    pub fn best_fraction(&self, name: &str) -> Option<f64> {
        self.curves
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, fr)| fr[0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn runs() -> Vec<SchemeRuns> {
        vec![
            // fast on case 0 and 1, slow on 2
            SchemeRuns {
                name: "A".into(),
                seconds: vec![Some(1.0), Some(2.0), Some(9.0)],
            },
            // best on case 2, 2x on the others
            SchemeRuns {
                name: "B".into(),
                seconds: vec![Some(2.0), Some(4.0), Some(3.0)],
            },
            // missing on case 0
            SchemeRuns {
                name: "C".into(),
                seconds: vec![None, Some(2.0), Some(6.0)],
            },
        ]
    }

    #[test]
    fn fractions_at_tau_one() {
        let p = performance_profile(&runs(), &[1.0]);
        // A best on cases 0 and 1 (tie with C on 1); B best on case 2.
        assert_eq!(p.best_fraction("A"), Some(2.0 / 3.0));
        assert_eq!(p.best_fraction("B"), Some(1.0 / 3.0));
        assert_eq!(p.best_fraction("C"), Some(1.0 / 3.0));
    }

    #[test]
    fn fractions_grow_monotonically() {
        let p = performance_profile(&runs(), &default_taus(4.0, 0.5));
        for (name, fr) in &p.curves {
            for w in fr.windows(2) {
                assert!(w[0] <= w[1] + 1e-12, "{name} profile not monotone");
            }
        }
    }

    #[test]
    fn everything_within_large_tau_except_missing() {
        let p = performance_profile(&runs(), &[100.0]);
        assert_eq!(p.best_fraction("A"), None.or(Some(1.0)));
        // C missed case 0 entirely: caps at 2/3.
        let c = p.curves.iter().find(|(n, _)| n == "C").unwrap();
        assert!((c.1[0] - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn csv_shape() {
        let p = performance_profile(&runs(), &default_taus(2.0, 0.2));
        let csv = p.to_csv();
        let lines: Vec<&str> = csv.trim().lines().collect();
        assert_eq!(lines[0], "tau,A,B,C");
        assert_eq!(lines.len(), 1 + p.taus.len());
    }

    #[test]
    fn default_taus_spacing() {
        let t = default_taus(2.4, 0.2);
        assert_eq!(t.len(), 8);
        assert!((t[0] - 1.0).abs() < 1e-12);
        assert!((t[7] - 2.4).abs() < 1e-9);
    }

    #[test]
    fn busy_spread_ratio() {
        assert!(busy_spread(&[]).is_none());
        let s = busy_spread(&[4.0, 1.0, 1.0, 2.0]).unwrap();
        assert_eq!(s.threads, 4);
        assert!((s.max - 4.0).abs() < 1e-12);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert!((s.ratio() - 2.0).abs() < 1e-12);
        // Perfect balance.
        let s = busy_spread(&[3.0, 3.0]).unwrap();
        assert!((s.ratio() - 1.0).abs() < 1e-12);
        // Degenerate all-zero recording.
        let s = busy_spread(&[0.0]).unwrap();
        assert!((s.ratio() - 1.0).abs() < 1e-12);
    }
}
