//! Fixed-size rayon pools for the strong-scaling experiment (Fig 11) and
//! the `MSPGEMM_THREADS` pinning knob (the paper pins with
//! `GOMP_CPU_AFFINITY`; rayon pools give the equivalent isolation).

/// Run `f` inside a dedicated pool of exactly `threads` workers.
pub fn with_threads<T: Send>(threads: usize, f: impl FnOnce() -> T + Send) -> T {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads.max(1))
        .build()
        .expect("failed to build rayon pool");
    pool.install(f)
}

/// The thread counts to sweep for strong scaling: 1, 2, 4, … up to the
/// machine (or `MSPGEMM_THREADS`), always including the maximum.
pub fn scaling_thread_counts() -> Vec<usize> {
    let max = crate::metrics::env_usize("MSPGEMM_THREADS", num_cpus());
    let mut counts = Vec::new();
    let mut t = 1usize;
    while t < max {
        counts.push(t);
        t *= 2;
    }
    counts.push(max);
    counts.dedup();
    counts
}

/// Available logical CPUs (rayon's default parallelism).
pub fn num_cpus() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn with_threads_uses_exactly_n() {
        let seen = with_threads(3, rayon::current_num_threads);
        assert_eq!(seen, 3);
    }

    #[test]
    fn with_threads_runs_parallel_work() {
        let sum: u64 = with_threads(2, || (0..1000u64).into_par_iter().sum());
        assert_eq!(sum, 499_500);
    }

    #[test]
    fn scaling_counts_are_increasing_and_end_at_max() {
        let counts = scaling_thread_counts();
        assert!(!counts.is_empty());
        assert!(counts.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(*counts.first().unwrap(), 1);
    }
}
