//! Suite runners: execute one application benchmark for every scheme over
//! every suite graph, producing the [`SchemeRuns`] matrices behind the
//! paper's performance profiles.

use crate::metrics::time_best;
use crate::perfprofile::SchemeRuns;
use masked_spgemm::ExecOpts;
use mspgemm_gen::SuiteGraph;
use mspgemm_graph::scheme::Scheme;
use mspgemm_graph::{bc, ktruss, tricount};

/// Triangle-counting runtimes (masked SpGEMM only, as in §8.2) for each
/// scheme × suite graph, under the given execution options (a shared
/// [`masked_spgemm::WsPool`] in `opts` amortizes accumulator allocation
/// across repetitions and cases).
pub fn tc_runs(
    suite: &[SuiteGraph],
    schemes: &[Scheme],
    reps: usize,
    opts: &ExecOpts<'_>,
) -> Vec<SchemeRuns> {
    let prepared: Vec<_> = suite.iter().map(|g| tricount::prepare(&g.adj)).collect();
    schemes
        .iter()
        .map(|&s| SchemeRuns {
            name: s.name(),
            seconds: prepared
                .iter()
                .map(|ops| {
                    let (secs, _) = time_best(reps, || tricount::count_prepared_with(ops, s, opts));
                    Some(secs)
                })
                .collect(),
        })
        .collect()
}

/// k-truss runtimes (sum of masked SpGEMM time across iterations, §8.3).
pub fn ktruss_runs(
    suite: &[SuiteGraph],
    schemes: &[Scheme],
    k: usize,
    reps: usize,
    opts: &ExecOpts<'_>,
) -> Vec<SchemeRuns> {
    schemes
        .iter()
        .map(|&s| SchemeRuns {
            name: s.name(),
            seconds: suite
                .iter()
                .map(|g| {
                    let (_, result) = time_best(reps, || ktruss::k_truss_with(&g.adj, k, s, opts));
                    // The benchmarked quantity is the masked-SpGEMM time,
                    // not the whole loop (pruning excluded), per §8.3.
                    Some(result.mxm_seconds)
                })
                .collect(),
        })
        .collect()
}

/// BC runtimes (forward+backward masked SpGEMM, §8.4) with the first
/// `batch` vertices as sources.
pub fn bc_runs(
    suite: &[SuiteGraph],
    schemes: &[Scheme],
    batch: usize,
    reps: usize,
    opts: &ExecOpts<'_>,
) -> Vec<SchemeRuns> {
    schemes
        .iter()
        .map(|&s| SchemeRuns {
            name: s.name(),
            seconds: suite
                .iter()
                .map(|g| {
                    if !s.supports_complement() {
                        return None; // MCA is absent from Fig 16
                    }
                    let n = g.adj.nrows();
                    let sources: Vec<usize> = (0..batch.min(n)).collect();
                    let (_, result) =
                        time_best(reps, || bc::betweenness_with(&g.adj, &sources, s, opts));
                    Some(result.mxm_seconds)
                })
                .collect(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use masked_spgemm::{Algorithm, Phases};
    use mspgemm_gen::{build_suite, SuiteSize};

    fn tiny_suite() -> Vec<SuiteGraph> {
        // Two small graphs to keep unit-test runtime negligible.
        vec![
            SuiteGraph::new("er", mspgemm_gen::er_symmetric(200, 8, 1)),
            SuiteGraph::new("sw", mspgemm_gen::structured::small_world(200, 4, 0.1, 2)),
        ]
    }

    #[test]
    fn tc_runs_shape() {
        let schemes = [Scheme::Ours(Algorithm::Msa, Phases::One), Scheme::SsSaxpy];
        let runs = tc_runs(&tiny_suite(), &schemes, 1, &ExecOpts::default());
        assert_eq!(runs.len(), 2);
        assert!(runs.iter().all(|r| r.seconds.len() == 2));
        assert!(runs.iter().all(|r| r.seconds.iter().all(|s| s.is_some())));
    }

    #[test]
    fn bc_runs_mark_mca_missing() {
        let schemes = [
            Scheme::Ours(Algorithm::Mca, Phases::One),
            Scheme::Ours(Algorithm::Msa, Phases::One),
        ];
        let runs = bc_runs(&tiny_suite(), &schemes, 4, 1, &ExecOpts::default());
        assert!(
            runs[0].seconds.iter().all(|s| s.is_none()),
            "MCA cannot run BC"
        );
        assert!(runs[1].seconds.iter().all(|s| s.is_some()));
    }

    #[test]
    fn runs_identical_across_schedules_with_pool() {
        use masked_spgemm::{RowSchedule, WsPool};
        let suite = tiny_suite();
        let schemes = [Scheme::Ours(Algorithm::Hash, Phases::One)];
        let k = 4;
        let baseline = ktruss_runs(&suite, &schemes, k, 1, &ExecOpts::default());
        for sched in RowSchedule::ALL {
            let pool = WsPool::new();
            let opts = ExecOpts {
                schedule: sched,
                ws_pool: Some(&pool),
                stats: None,
                deadline: None,
            };
            let runs = ktruss_runs(&suite, &schemes, k, 1, &opts);
            assert_eq!(runs.len(), baseline.len());
            // Timing differs; shape and presence must not.
            for (r, b) in runs.iter().zip(&baseline) {
                assert_eq!(r.seconds.len(), b.seconds.len(), "{}", sched.name());
            }
            assert!(pool.hits() > 0, "iterative k-truss must reuse workspaces");
        }
    }

    #[test]
    fn suite_builds_for_runners() {
        // Sanity: the real Small suite is usable (built once, cheap graphs).
        let suite = build_suite(SuiteSize::Small);
        assert!(suite.len() >= 10, "suite should span ≥10 graphs");
    }
}
