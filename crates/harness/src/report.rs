//! Minimal tabular report emitters (CSV + aligned text) for the bench
//! binaries — each figure bench prints the same rows/series the paper
//! plots.

/// A simple table: header + rows of strings.
pub struct Table {
    /// Column headers.
    pub headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given headers.
    pub fn new(headers: &[&str]) -> Self {
        Self {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// CSV rendering.
    pub fn to_csv(&self) -> String {
        let mut out = self.headers.join(",");
        out.push('\n');
        for r in &self.rows {
            out.push_str(&r.join(","));
            out.push('\n');
        }
        out
    }

    /// Column-aligned plain text (for terminal reading).
    pub fn to_text(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (c, cell) in r.iter().enumerate().take(ncols) {
                widths[c] = widths[c].max(cell.len());
            }
        }
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(c, s)| format!("{:>w$}", s, w = widths[c]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = fmt_row(&self.headers);
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r));
            out.push('\n');
        }
        out
    }
}

/// Format seconds with µs resolution.
pub fn fmt_secs(s: f64) -> String {
    format!("{s:.6}")
}

/// Format a float metric (GFLOPS / MTEPS) with 3 decimals.
pub fn fmt_metric(x: f64) -> String {
    format!("{x:.3}")
}

/// Escape a string for inclusion in a JSON document.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// One dataset's identity in a [`SuiteReport`].
#[derive(Clone, Debug)]
pub struct DatasetInfo {
    /// Dataset name (suite entry or file stem).
    pub name: String,
    /// Vertex count (matrix dimension).
    pub nrows: usize,
    /// Stored entries of the adjacency matrix (2× undirected edges).
    pub nnz: usize,
}

/// Execution-layer summary across a whole suite sweep: row-schedule
/// balance (busy-time spread over the worker threads) and workspace-pool
/// effectiveness. `None` busy fields never occur here — a sweep that
/// recorded no busy time simply omits the summary.
#[derive(Clone, Debug)]
pub struct ExecSummary {
    /// Busy-time max/mean across threads (1.0 = perfectly even).
    pub busy_max_over_mean: f64,
    /// Number of threads that recorded busy time.
    pub busy_threads: usize,
    /// Workspace-pool takes served from retained scratch.
    pub pool_hits: u64,
    /// Workspace-pool takes that had to allocate fresh.
    pub pool_misses: u64,
    /// The SIMD level the kernels ran at (`scalar` / `sse4.2` / `avx2`),
    /// as runtime-detected (or capped by `MXM_NO_SIMD` / a build without
    /// the `simd` feature).
    pub simd: String,
}

impl ExecSummary {
    /// Fraction of pool takes served warm (`0.0` when nothing was taken).
    pub fn hit_rate(&self) -> f64 {
        let takes = self.pool_hits + self.pool_misses;
        if takes == 0 {
            0.0
        } else {
            self.pool_hits as f64 / takes as f64
        }
    }
}

/// A machine-readable experiment report: which application ran, over
/// which datasets, with per-scheme per-dataset runtimes. Serializes to
/// JSON without external dependencies (the build environment is offline).
#[derive(Clone, Debug)]
pub struct SuiteReport {
    /// Application name (`tc` / `ktruss` / `bc`).
    pub app: String,
    /// Free-form run parameters (`reps`, `threads`, `k`, `batch`, ...).
    pub params: Vec<(String, String)>,
    /// Scheduling/pool summary for the sweep, when busy time was recorded.
    pub exec: Option<ExecSummary>,
    /// The datasets swept, in run order.
    pub datasets: Vec<DatasetInfo>,
    /// Per-scheme runtimes; `seconds[i]` aligns with `datasets[i]`,
    /// `null` = scheme did not run that case.
    pub runs: Vec<crate::perfprofile::SchemeRuns>,
}

impl SuiteReport {
    /// Serialize to a self-contained JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"app\": \"{}\",\n", json_escape(&self.app)));
        out.push_str("  \"params\": {");
        for (i, (k, v)) in self.params.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{}\": \"{}\"", json_escape(k), json_escape(v)));
        }
        out.push_str("},\n");
        if let Some(e) = &self.exec {
            out.push_str(&format!(
                "  \"exec\": {{\"busy_max_over_mean\": {:.4}, \"busy_threads\": {}, \
                 \"pool_hits\": {}, \"pool_misses\": {}, \"hit_rate\": {:.4}, \
                 \"simd\": \"{}\"}},\n",
                e.busy_max_over_mean,
                e.busy_threads,
                e.pool_hits,
                e.pool_misses,
                e.hit_rate(),
                json_escape(&e.simd)
            ));
        }
        out.push_str("  \"datasets\": [\n");
        for (i, d) in self.datasets.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"nrows\": {}, \"nnz\": {}}}{}\n",
                json_escape(&d.name),
                d.nrows,
                d.nnz,
                if i + 1 < self.datasets.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n  \"schemes\": [\n");
        for (i, r) in self.runs.iter().enumerate() {
            let secs: Vec<String> = r
                .seconds
                .iter()
                .map(|s| match s {
                    Some(t) => format!("{t:.9}"),
                    None => "null".to_string(),
                })
                .collect();
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"seconds\": [{}]}}{}\n",
                json_escape(&r.name),
                secs.join(", "),
                if i + 1 < self.runs.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_rendering() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["1".into(), "2".into()]);
        t.row(&["3".into(), "4".into()]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n3,4\n");
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only one".into()]);
    }

    #[test]
    fn text_is_aligned() {
        let mut t = Table::new(&["name", "x"]);
        t.row(&["long-name".into(), "1".into()]);
        let text = t.to_text();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("name"));
        assert!(lines[2].contains("long-name"));
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("x\ny"), "x\\ny");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn suite_report_json_shape() {
        use crate::perfprofile::SchemeRuns;
        let rep = SuiteReport {
            app: "tc".into(),
            params: vec![("reps".into(), "2".into())],
            exec: Some(ExecSummary {
                busy_max_over_mean: 1.25,
                busy_threads: 8,
                pool_hits: 30,
                pool_misses: 10,
                simd: "avx2".into(),
            }),
            datasets: vec![
                DatasetInfo {
                    name: "er".into(),
                    nrows: 10,
                    nnz: 40,
                },
                DatasetInfo {
                    name: "rm\"at".into(),
                    nrows: 20,
                    nnz: 80,
                },
            ],
            runs: vec![SchemeRuns {
                name: "MSA-1P".into(),
                seconds: vec![Some(0.5), None],
            }],
        };
        let j = rep.to_json();
        assert!(j.contains("\"app\": \"tc\""));
        assert!(j.contains("\"reps\": \"2\""));
        assert!(j.contains("\"busy_max_over_mean\": 1.2500"));
        assert!(j.contains("\"hit_rate\": 0.7500"));
        assert!(j.contains("rm\\\"at"));
        assert!(j.contains("null"));
        assert!(j.contains("0.500000000"));
        // Balanced braces/brackets (cheap well-formedness check).
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());

        // No busy time recorded -> the exec block is simply absent.
        let mut quiet = rep.clone();
        quiet.exec = None;
        assert!(!quiet.to_json().contains("\"exec\""));
    }

    #[test]
    fn exec_summary_hit_rate() {
        let e = ExecSummary {
            busy_max_over_mean: 1.0,
            busy_threads: 1,
            pool_hits: 0,
            pool_misses: 0,
            simd: "scalar".into(),
        };
        assert_eq!(e.hit_rate(), 0.0, "no takes: defined as zero");
    }
}
