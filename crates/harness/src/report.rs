//! Minimal tabular report emitters (CSV + aligned text) for the bench
//! binaries — each figure bench prints the same rows/series the paper
//! plots.

/// A simple table: header + rows of strings.
pub struct Table {
    /// Column headers.
    pub headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given headers.
    pub fn new(headers: &[&str]) -> Self {
        Self { headers: headers.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Append a row (must match the header arity).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// CSV rendering.
    pub fn to_csv(&self) -> String {
        let mut out = self.headers.join(",");
        out.push('\n');
        for r in &self.rows {
            out.push_str(&r.join(","));
            out.push('\n');
        }
        out
    }

    /// Column-aligned plain text (for terminal reading).
    pub fn to_text(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (c, cell) in r.iter().enumerate().take(ncols) {
                widths[c] = widths[c].max(cell.len());
            }
        }
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(c, s)| format!("{:>w$}", s, w = widths[c]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = fmt_row(&self.headers);
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r));
            out.push('\n');
        }
        out
    }
}

/// Format seconds with µs resolution.
pub fn fmt_secs(s: f64) -> String {
    format!("{s:.6}")
}

/// Format a float metric (GFLOPS / MTEPS) with 3 decimals.
pub fn fmt_metric(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_rendering() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["1".into(), "2".into()]);
        t.row(&["3".into(), "4".into()]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n3,4\n");
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only one".into()]);
    }

    #[test]
    fn text_is_aligned() {
        let mut t = Table::new(&["name", "x"]);
        t.row(&["long-name".into(), "1".into()]);
        let text = t.to_text();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("name"));
        assert!(lines[2].contains("long-name"));
    }
}
