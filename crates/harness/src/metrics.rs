//! Performance metrics matching the paper's y-axes: GFLOPS (Figs 10, 14),
//! MTEPS (Fig 15), and repeat-and-take-best timing.

use std::time::Instant;

/// GFLOPS: `flops / seconds / 1e9`. `flops` already includes the ×2
/// multiply-add convention (see `Csr::flops_with`).
pub fn gflops(flops: u64, seconds: f64) -> f64 {
    if seconds <= 0.0 {
        return 0.0;
    }
    flops as f64 / seconds / 1e9
}

/// Millions of Traversed Edges Per Second, the Graph500/SSCA metric the
/// paper uses for BC (§8.4): `batch_size × num_edges / total_time`.
pub fn mteps(batch_size: usize, num_edges: usize, seconds: f64) -> f64 {
    if seconds <= 0.0 {
        return 0.0;
    }
    (batch_size as f64) * (num_edges as f64) / seconds / 1e6
}

/// Ingest throughput in decimal megabytes per second — the dataset
/// cold-start metric the `mxm run` report and the ingest microbench
/// print.
pub fn mb_per_s(bytes: u64, seconds: f64) -> f64 {
    if seconds <= 0.0 {
        return 0.0;
    }
    bytes as f64 / seconds / 1e6
}

/// FNV-1a fingerprint over a CSR's exact in-memory content: shape, row
/// pointers, column indices, and value bit patterns. Two matrices agree
/// on the fingerprint iff they are content-identical — independent of
/// how their sections are backed, so a heap-loaded and an mmap-backed
/// copy of the same matrix fingerprint identically. `mxm run` and the
/// serve protocol both report it and parity is checkable end to end
/// without shipping the matrix over the wire. Accepts `&Csr<f64>` or a
/// [`CsrRef`](mspgemm_sparse::CsrRef) view.
pub fn csr_fingerprint<'a>(a: impl Into<mspgemm_sparse::CsrRef<'a, f64>>) -> u64 {
    let a = a.into();
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
    };
    eat(&(a.nrows() as u64).to_le_bytes());
    eat(&(a.ncols() as u64).to_le_bytes());
    for &p in a.rowptr() {
        eat(&(p as u64).to_le_bytes());
    }
    for &c in a.colidx() {
        eat(&c.to_le_bytes());
    }
    for &v in a.values() {
        eat(&v.to_bits().to_le_bytes());
    }
    h
}

/// Ingest throughput in parsed entries per second (one coordinate line
/// of a `.mtx` file = one entry, before symmetric expansion).
pub fn entries_per_s(entries: usize, seconds: f64) -> f64 {
    if seconds <= 0.0 {
        return 0.0;
    }
    entries as f64 / seconds
}

/// Run `f` once to warm up, then `reps` times, returning the minimum
/// wall-clock seconds (the standard noise-robust estimator) and the last
/// result.
pub fn time_best<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    assert!(reps >= 1);
    let mut out = f(); // warm-up (also primes allocators/caches)
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        out = f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    (best, out)
}

/// Read an environment variable as `usize` with a default — the knobs
/// (`MSPGEMM_SCALE`, `MSPGEMM_REPS`, …) that let the default bench runs
/// stay small while paper-scale runs are one variable away.
pub fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Read an environment variable as a comma-separated list of positive
/// `usize`s with a default spec — the sweep knobs
/// (`MSPGEMM_INGEST_THREADS`, `MSPGEMM_SCHED_SCALES`, …).
///
/// # Panics
/// If the spec yields no usable entries (a silent empty sweep would look
/// like a passing bench).
pub fn env_usize_list(name: &str, default: &str) -> Vec<usize> {
    let spec = std::env::var(name).unwrap_or_else(|_| default.into());
    let list: Vec<usize> = spec
        .split(',')
        .filter_map(|t| t.trim().parse().ok())
        .filter(|&t| t > 0)
        .collect();
    assert!(!list.is_empty(), "{name} has no usable entries: {spec:?}");
    list
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gflops_math() {
        assert!((gflops(2_000_000_000, 1.0) - 2.0).abs() < 1e-12);
        assert!((gflops(1_000_000_000, 0.5) - 2.0).abs() < 1e-12);
        assert_eq!(gflops(100, 0.0), 0.0);
    }

    #[test]
    fn mteps_math() {
        // 512 sources × 1M edges in 2s = 256 MTEPS.
        assert!((mteps(512, 1_000_000, 2.0) - 256.0).abs() < 1e-9);
        assert_eq!(mteps(1, 1, 0.0), 0.0);
    }

    #[test]
    fn throughput_math() {
        assert!((mb_per_s(5_000_000, 2.0) - 2.5).abs() < 1e-12);
        assert_eq!(mb_per_s(100, 0.0), 0.0);
        assert!((entries_per_s(1_000_000, 0.5) - 2_000_000.0).abs() < 1e-6);
        assert_eq!(entries_per_s(100, 0.0), 0.0);
    }

    #[test]
    fn time_best_returns_min_and_result() {
        let mut calls = 0;
        let (secs, val) = time_best(3, || {
            calls += 1;
            42
        });
        assert_eq!(val, 42);
        assert_eq!(calls, 4, "warmup + reps");
        assert!(secs >= 0.0);
    }

    #[test]
    fn fingerprint_distinguishes_content() {
        use mspgemm_sparse::Csr;
        let a = Csr::from_dense(&[vec![Some(1.0), None], vec![None, Some(2.0)]], 2);
        let b = Csr::from_dense(&[vec![Some(1.0), None], vec![None, Some(2.0)]], 2);
        assert_eq!(csr_fingerprint(&a), csr_fingerprint(&b));
        // A single value-bit flip changes the fingerprint.
        let c = Csr::from_dense(&[vec![Some(1.0), None], vec![None, Some(2.0 + 1e-15)]], 2);
        assert_ne!(csr_fingerprint(&a), csr_fingerprint(&c));
        // Same values, different position.
        let d = Csr::from_dense(&[vec![None, Some(1.0)], vec![Some(2.0), None]], 2);
        assert_ne!(csr_fingerprint(&a), csr_fingerprint(&d));
        // Same nnz layout, different shape padding.
        let e = Csr::<f64>::empty(2, 3);
        let f = Csr::<f64>::empty(3, 2);
        assert_ne!(csr_fingerprint(&e), csr_fingerprint(&f));
    }

    #[test]
    fn env_usize_fallback() {
        std::env::remove_var("MSPGEMM_TEST_KNOB_XYZ");
        assert_eq!(env_usize("MSPGEMM_TEST_KNOB_XYZ", 7), 7);
        std::env::set_var("MSPGEMM_TEST_KNOB_XYZ", "13");
        assert_eq!(env_usize("MSPGEMM_TEST_KNOB_XYZ", 7), 13);
        std::env::set_var("MSPGEMM_TEST_KNOB_XYZ", "not a number");
        assert_eq!(env_usize("MSPGEMM_TEST_KNOB_XYZ", 7), 7);
        std::env::remove_var("MSPGEMM_TEST_KNOB_XYZ");
    }
}
