//! # mspgemm-harness
//!
//! Benchmark methodology for the Masked SpGEMM reproduction (§7–8):
//!
//! * [`perfprofile`] — Dolan-Moré performance profiles (Figs 8/9/12/13/16);
//! * [`metrics`] — GFLOPS, MTEPS, repeat-and-take-best timing and the
//!   `MSPGEMM_*` environment knobs;
//! * [`threads`] — fixed-size rayon pools for strong scaling (Fig 11);
//! * [`runner`] — scheme × suite sweeps for the three applications;
//! * [`report`] — CSV / aligned-text emitters used by the `fig*` benches;
//! * [`ascii`] — the Fig 7 winner heat-map as a terminal grid.

#![warn(missing_docs)]

pub mod ascii;
pub mod metrics;
pub mod perfprofile;
pub mod report;
pub mod runner;
pub mod threads;

pub use metrics::{
    csr_fingerprint, entries_per_s, env_usize, env_usize_list, gflops, mb_per_s, mteps, time_best,
};
pub use perfprofile::{
    busy_spread, default_taus, performance_profile, BusySpread, PerfProfile, SchemeRuns,
};
pub use threads::{scaling_thread_counts, with_threads};
