//! ASCII rendition of the paper's Fig 7 winner heat-map: a grid of
//! (input degree × mask degree) cells, each labeled with the winning
//! scheme — the closest a terminal gets to the paper's colored plot.

use std::collections::BTreeMap;

/// One cell of the winner grid.
#[derive(Clone, Debug)]
pub struct GridCell {
    /// Row key (the paper's y axis: degree of `A` and `B`).
    pub input_degree: usize,
    /// Column key (the paper's x axis: degree of the mask).
    pub mask_degree: usize,
    /// Winning scheme name.
    pub winner: String,
}

/// Render cells as a 2D grid, rows sorted descending by input degree
/// (matching the paper's orientation), columns ascending by mask degree.
pub fn render_winner_grid(cells: &[GridCell]) -> String {
    if cells.is_empty() {
        return String::from("(empty grid)\n");
    }
    let mut rows: BTreeMap<usize, BTreeMap<usize, &str>> = BTreeMap::new();
    let mut col_keys: Vec<usize> = Vec::new();
    for c in cells {
        rows.entry(c.input_degree)
            .or_default()
            .insert(c.mask_degree, &c.winner);
        if !col_keys.contains(&c.mask_degree) {
            col_keys.push(c.mask_degree);
        }
    }
    col_keys.sort_unstable();
    let width = cells
        .iter()
        .map(|c| c.winner.len())
        .chain(col_keys.iter().map(|k| k.to_string().len()))
        .max()
        .unwrap()
        .max(4);

    let mut out = String::new();
    out.push_str(&format!("{:>8} |", "deg(A,B)"));
    for k in &col_keys {
        out.push_str(&format!(" {:>w$}", k, w = width));
    }
    out.push('\n');
    out.push_str(&format!(
        "{:->8}-+{}\n",
        "",
        "-".repeat((width + 1) * col_keys.len())
    ));
    for (deg, row) in rows.iter().rev() {
        out.push_str(&format!("{deg:>8} |"));
        for k in &col_keys {
            out.push_str(&format!(
                " {:>w$}",
                row.get(k).copied().unwrap_or("-"),
                w = width
            ));
        }
        out.push('\n');
    }
    out.push_str(&format!("{:>8}  (columns: mask degree)\n", ""));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(di: usize, dm: usize, w: &str) -> GridCell {
        GridCell {
            input_degree: di,
            mask_degree: dm,
            winner: w.to_string(),
        }
    }

    #[test]
    fn renders_rows_descending_columns_ascending() {
        let cells = vec![
            cell(1, 1, "Heap"),
            cell(1, 16, "HeapDot"),
            cell(16, 1, "Inner"),
            cell(16, 16, "MSA"),
        ];
        let g = render_winner_grid(&cells);
        let lines: Vec<&str> = g.lines().collect();
        // Header, separator, deg 16 row, deg 1 row, footer.
        assert_eq!(lines.len(), 5);
        assert!(lines[2].starts_with("      16 |"), "got: {}", lines[2]);
        assert!(lines[2].contains("Inner") && lines[2].contains("MSA"));
        assert!(lines[3].starts_with("       1 |"));
        assert!(lines[3].contains("Heap") && lines[3].contains("HeapDot"));
    }

    #[test]
    fn missing_cells_render_as_dash() {
        let g = render_winner_grid(&[cell(1, 1, "MSA"), cell(2, 4, "Hash")]);
        assert!(g.contains('-'));
        assert!(g.contains("MSA"));
        assert!(g.contains("Hash"));
    }

    #[test]
    fn empty_grid() {
        assert_eq!(render_winner_grid(&[]), "(empty grid)\n");
    }
}
